#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/variable.h"
#include "autograd/variable_ops.h"
#include "common/random.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

Tensor RandomTensor(const Shape& shape, uint64_t seed, double lo = -1.0,
                    double hi = 1.0) {
  Rng rng(seed);
  return Tensor::Rand(shape, &rng, lo, hi);
}

TEST(Variable, LeafBasics) {
  Variable v(Tensor::Full({2}, 3.0), /*requires_grad=*/true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.size(), 2);
}

TEST(Variable, BackwardAccumulatesIntoLeaves) {
  Variable a(Tensor::Full({3}, 2.0), true);
  Variable loss = ag::SumAll(ag::MulScalar(a, 4.0));
  loss.Backward();
  ASSERT_TRUE(a.has_grad());
  for (int64_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a.grad().data()[i], 4.0);
}

TEST(Variable, GradsAccumulateAcrossBackwards) {
  Variable a(Tensor::Ones({2}), true);
  ag::SumAll(a).Backward();
  ag::SumAll(a).Backward();
  EXPECT_DOUBLE_EQ(a.grad().data()[0], 2.0);
  a.ClearGrad();
  EXPECT_FALSE(a.has_grad());
}

TEST(Variable, NoGradLeavesAreSkipped) {
  Variable a(Tensor::Ones({2}), false);
  Variable b(Tensor::Ones({2}), true);
  Variable loss = ag::SumAll(ag::Mul(a, b));
  loss.Backward();
  EXPECT_FALSE(a.has_grad());
  EXPECT_TRUE(b.has_grad());
}

TEST(Variable, DiamondGraphSumsBothPaths) {
  // loss = sum(a*a + a) -> d/da = 2a + 1.
  Variable a(Tensor::Full({2}, 3.0), true);
  Variable loss = ag::SumAll(ag::Add(ag::Mul(a, a), a));
  loss.Backward();
  EXPECT_DOUBLE_EQ(a.grad().data()[0], 7.0);
}

TEST(Variable, SharedSubexpressionUsedTwice) {
  // b = 2a used by two consumers; d/da sum(b + 3b) = 8.
  Variable a(Tensor::Ones({2}), true);
  Variable b = ag::MulScalar(a, 2.0);
  Variable loss = ag::SumAll(ag::Add(b, ag::MulScalar(b, 3.0)));
  loss.Backward();
  EXPECT_DOUBLE_EQ(a.grad().data()[1], 8.0);
}

TEST(Variable, DetachStopsGradients) {
  Variable a(Tensor::Ones({2}), true);
  Variable loss = ag::SumAll(ag::Mul(ag::Detach(a), a));
  loss.Backward();
  EXPECT_DOUBLE_EQ(a.grad().data()[0], 1.0);  // Only the live path counts.
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checks for every differentiable op.
// ---------------------------------------------------------------------------

using UnaryFn = Variable (*)(const Variable&);

struct UnaryCase {
  const char* name;
  UnaryFn fn;
  double lo;
  double hi;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifference) {
  const UnaryCase& c = GetParam();
  const Tensor input = RandomTensor({2, 3}, 42, c.lo, c.hi);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        return ag::SumAll(GetParam().fn(v[0]));
      },
      {input}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << c.name << ": " << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnary, UnaryGradTest,
    ::testing::Values(UnaryCase{"exp", &ag::Exp, -1.0, 1.0},
                      UnaryCase{"log", &ag::Log, 0.5, 2.0},
                      UnaryCase{"sqrt", &ag::Sqrt, 0.5, 2.0},
                      UnaryCase{"abs", &ag::Abs, 0.2, 1.0},
                      UnaryCase{"tanh", &ag::Tanh, -1.0, 1.0},
                      UnaryCase{"sigmoid", &ag::Sigmoid, -1.0, 1.0},
                      UnaryCase{"relu_pos", &ag::Relu, 0.2, 1.0},
                      UnaryCase{"relu_neg", &ag::Relu, -1.0, -0.2},
                      UnaryCase{"neg", &ag::Neg, -1.0, 1.0}),
    [](const auto& info) { return std::string(info.param.name); });

using BinaryFn = Variable (*)(const Variable&, const Variable&);

struct BinaryCase {
  const char* name;
  BinaryFn fn;
  Shape shape_a;
  Shape shape_b;
};

class BinaryGradTest : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryGradTest, MatchesFiniteDifference) {
  const BinaryCase& c = GetParam();
  const Tensor a = RandomTensor(c.shape_a, 1, 0.5, 1.5);
  const Tensor b = RandomTensor(c.shape_b, 2, 0.5, 1.5);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        return ag::SumAll(GetParam().fn(v[0], v[1]));
      },
      {a, b}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << c.name << ": " << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinary, BinaryGradTest,
    ::testing::Values(
        BinaryCase{"add_same", &ag::Add, {2, 3}, {2, 3}},
        BinaryCase{"add_broadcast", &ag::Add, {2, 3}, {3}},
        BinaryCase{"add_broadcast_col", &ag::Add, {2, 3}, {2, 1}},
        BinaryCase{"sub_same", &ag::Sub, {2, 3}, {2, 3}},
        BinaryCase{"sub_broadcast", &ag::Sub, {3}, {2, 3}},
        BinaryCase{"mul_same", &ag::Mul, {2, 3}, {2, 3}},
        BinaryCase{"mul_broadcast", &ag::Mul, {2, 3}, {1, 3}},
        BinaryCase{"div_same", &ag::Div, {2, 3}, {2, 3}},
        BinaryCase{"div_broadcast", &ag::Div, {2, 3}, {3}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(GradCheck, MatMul2d) {
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::MatMul(v[0], v[1]));
      },
      {RandomTensor({3, 4}, 3), RandomTensor({4, 2}, 4)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(GradCheck, MatMulBatchedBroadcast) {
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::MatMul(v[0], v[1]));
      },
      {RandomTensor({2, 3, 4}, 5), RandomTensor({4, 2}, 6)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(GradCheck, MatMulLeftBroadcast) {
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::MatMul(v[0], v[1]));
      },
      {RandomTensor({3, 3}, 7), RandomTensor({2, 2, 3, 2}, 8)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

class ReduceGradTest
    : public ::testing::TestWithParam<std::tuple<int64_t, bool>> {};

TEST_P(ReduceGradTest, SumAndMean) {
  const auto [axis, keepdim] = GetParam();
  for (const bool use_mean : {false, true}) {
    GradCheckResult result = CheckGradients(
        [axis, keepdim, use_mean](const std::vector<Variable>& v) {
          // Square first so the reduction gradient is input-dependent.
          const Variable squared = ag::Mul(v[0], v[0]);
          const Variable reduced = use_mean ? ag::Mean(squared, axis, keepdim)
                                            : ag::Sum(squared, axis, keepdim);
          return ag::SumAll(ag::Mul(reduced, reduced));
        },
        {RandomTensor({2, 3, 4}, 9)}, 1e-6, 1e-5);
    EXPECT_TRUE(result.ok) << result.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AxesAndKeepdim, ReduceGradTest,
    ::testing::Combine(::testing::Values<int64_t>(0, 1, 2),
                       ::testing::Bool()));

TEST(GradCheck, SoftmaxAlongEachAxis) {
  for (int64_t axis = 0; axis < 2; ++axis) {
    GradCheckResult result = CheckGradients(
        [axis](const std::vector<Variable>& v) {
          const Variable s = ag::Softmax(v[0], axis);
          return ag::SumAll(ag::Mul(s, s));
        },
        {RandomTensor({3, 4}, 10)}, 1e-6, 1e-5);
    EXPECT_TRUE(result.ok) << "axis " << axis << ": " << result.message;
  }
}

TEST(GradCheck, SoftmaxWithTemperature) {
  for (const double tau : {0.5, 1.0, 5.0}) {
    GradCheckResult result = CheckGradients(
        [tau](const std::vector<Variable>& v) {
          const Variable s = ag::SoftmaxWithTemperature(v[0], 0, tau);
          return ag::SumAll(ag::Mul(s, s));
        },
        {RandomTensor({5}, 11)}, 1e-6, 1e-5);
    EXPECT_TRUE(result.ok) << "tau " << tau << ": " << result.message;
  }
}

TEST(SoftmaxTemperature, LowTauApproachesOneHot) {
  Variable logits(Tensor::FromVector({3}, {1.0, 2.0, 0.5}), false);
  const Tensor sharp =
      ag::SoftmaxWithTemperature(logits, 0, 0.01).value();
  EXPECT_GT(sharp.data()[1], 0.999);
  const Tensor smooth =
      ag::SoftmaxWithTemperature(logits, 0, 100.0).value();
  EXPECT_NEAR(smooth.data()[0], 1.0 / 3.0, 1e-2);
}

TEST(GradCheck, ReshapePermuteSliceConcatPad) {
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable x = ag::Reshape(v[0], {3, 4});
        x = ag::Permute(x, {1, 0});                  // [4, 3]
        Variable left = ag::Slice(x, 0, 0, 2);       // [2, 3]
        Variable right = ag::Slice(x, 0, 2, 2);      // [2, 3]
        Variable cat = ag::Concat({left, right}, 1); // [2, 6]
        Variable padded = ag::Pad(cat, 0, 1, 1);     // [4, 6]
        return ag::SumAll(ag::Mul(padded, padded));
      },
      {RandomTensor({12}, 12)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(GradCheck, IndexSelectWithDuplicates) {
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& v) {
        const Variable sel = ag::IndexSelect(v[0], 0, {2, 0, 2});
        return ag::SumAll(ag::Mul(sel, sel));
      },
      {RandomTensor({4, 3}, 13)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(IndexSelect, ForwardGathersRows) {
  Variable a(Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6}), false);
  const Tensor sel = ag::IndexSelect(a, 0, {2, 1}).value();
  EXPECT_EQ(sel.At({0, 0}), 5.0);
  EXPECT_EQ(sel.At({1, 1}), 4.0);
}

TEST(GradCheck, Losses) {
  const Tensor pred = RandomTensor({2, 3}, 14);
  const Tensor target = RandomTensor({2, 3}, 15);
  for (const int which : {0, 1, 2}) {
    GradCheckResult result = CheckGradients(
        [which](const std::vector<Variable>& v) {
          switch (which) {
            case 0:
              return ag::MseLoss(v[0], v[1]);
            case 1:
              return ag::L1Loss(v[0], v[1]);
            default:
              return ag::HuberLoss(v[0], v[1], 0.35);
          }
        },
        {pred, target}, 1e-6, 1e-4);
    EXPECT_TRUE(result.ok) << "loss " << which << ": " << result.message;
  }
}

TEST(Losses, KnownValues) {
  Variable p(Tensor::FromVector({2}, {1.0, 3.0}), false);
  Variable y(Tensor::FromVector({2}, {0.0, 1.0}), false);
  EXPECT_NEAR(ag::L1Loss(p, y).value().item(), 1.5, 1e-12);
  EXPECT_NEAR(ag::MseLoss(p, y).value().item(), 2.5, 1e-12);
  // Huber(delta=1): |1| -> 0.5; |2| -> 1*(2-0.5) = 1.5; mean = 1.0.
  EXPECT_NEAR(ag::HuberLoss(p, y, 1.0).value().item(), 1.0, 1e-12);
}

TEST(GradCheck, DeepComposedExpression) {
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& v) {
        Variable h = ag::Tanh(ag::MatMul(v[0], v[1]));
        h = ag::Mul(h, ag::Sigmoid(h));
        h = ag::Softmax(h, 1);
        return ag::MeanAll(ag::Mul(h, h));
      },
      {RandomTensor({3, 4}, 16), RandomTensor({4, 5}, 17)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(BackwardDeath, NonScalarNeedsSeed) {
  Variable a(Tensor::Ones({2}), true);
  Variable b = ag::MulScalar(a, 2.0);
  EXPECT_DEATH(b.Backward(), "");
  b.Backward(Tensor::Ones({2}));  // Seeded form works.
  EXPECT_DOUBLE_EQ(a.grad().data()[0], 2.0);
}

// ---------------------------------------------------------------------------
// Label-keyed grad-check sweep.
//
// Every op label registered in autograd/variable_ops.cc must have a
// finite-difference entry in the table below, and every table entry must
// correspond to a registered label. A new labeled op therefore cannot ship
// without a gradient check, and a renamed label cannot silently orphan its
// entry.
// ---------------------------------------------------------------------------

struct LabeledOpCase {
  std::string label;
  // Builds the op under test from the sweep inputs. The returned Variable
  // is the op's direct output (its tape node carries `label`).
  std::function<Variable(const std::vector<Variable>&)> build;
  std::vector<Tensor> inputs;
};

// Weights a tensor with a fixed pseudo-random constant before reducing to
// a scalar, so linear ops (reshape, permute, slice, ...) get a non-uniform
// upstream gradient — a plain SumAll would send gradient 1 to every
// coordinate and could not catch routing mistakes.
Variable WeightedSum(const Variable& v, uint64_t seed) {
  return ag::SumAll(ag::Mul(v, ag::Constant(RandomTensor(v.shape(), seed,
                                                         0.5, 1.5))));
}

std::vector<LabeledOpCase> LabeledOpCases() {
  // Inputs stay away from non-smooth points: denominators and sqrt/log
  // arguments in [0.5, 1.5], abs/relu inputs bounded away from 0, huber
  // residuals bounded away from |delta|.
  const Tensor positive = RandomTensor({2, 3}, 101, 0.5, 1.5);
  const Tensor generic = RandomTensor({2, 3}, 102);
  const Tensor generic_b = RandomTensor({2, 3}, 103);
  const Tensor away_from_zero = RandomTensor({2, 3}, 104, 0.25, 1.0);
  std::vector<LabeledOpCase> cases;
  const auto add = [&](const std::string& label,
                       std::function<Variable(const std::vector<Variable>&)>
                           build,
                       std::vector<Tensor> inputs) {
    cases.push_back({label, std::move(build), std::move(inputs)});
  };

  add("add", [](const auto& v) { return ag::Add(v[0], v[1]); },
      {generic, generic_b});
  add("sub", [](const auto& v) { return ag::Sub(v[0], v[1]); },
      {generic, generic_b});
  add("mul", [](const auto& v) { return ag::Mul(v[0], v[1]); },
      {generic, generic_b});
  add("div", [](const auto& v) { return ag::Div(v[0], v[1]); },
      {generic, positive});
  add("add_scalar", [](const auto& v) { return ag::AddScalar(v[0], 0.7); },
      {generic});
  add("mul_scalar", [](const auto& v) { return ag::MulScalar(v[0], -1.3); },
      {generic});
  add("exp", [](const auto& v) { return ag::Exp(v[0]); }, {generic});
  add("log", [](const auto& v) { return ag::Log(v[0]); }, {positive});
  add("sqrt", [](const auto& v) { return ag::Sqrt(v[0]); }, {positive});
  add("abs", [](const auto& v) { return ag::Abs(v[0]); }, {away_from_zero});
  add("tanh", [](const auto& v) { return ag::Tanh(v[0]); }, {generic});
  add("sigmoid", [](const auto& v) { return ag::Sigmoid(v[0]); }, {generic});
  add("relu", [](const auto& v) { return ag::Relu(v[0]); },
      {away_from_zero});
  add("pow_scalar", [](const auto& v) { return ag::PowScalar(v[0], 2.5); },
      {positive});
  add("matmul", [](const auto& v) { return ag::MatMul(v[0], v[1]); },
      {RandomTensor({2, 3}, 105), RandomTensor({3, 4}, 106)});
  add("sum",
      [](const auto& v) { return ag::Sum(v[0], /*axis=*/1,
                                         /*keepdim=*/false); },
      {generic});
  add("sum_all", [](const auto& v) { return ag::SumAll(v[0]); }, {generic});
  add("softmax", [](const auto& v) { return ag::Softmax(v[0], 1); },
      {generic});
  add("reshape",
      [](const auto& v) { return ag::Reshape(v[0], Shape{3, 2}); },
      {generic});
  add("permute",
      [](const auto& v) { return ag::Permute(v[0], {2, 0, 1}); },
      {RandomTensor({2, 3, 4}, 107)});
  add("concat",
      [](const auto& v) { return ag::Concat({v[0], v[1]}, /*axis=*/0); },
      {generic, generic_b});
  add("slice",
      [](const auto& v) {
        return ag::Slice(v[0], /*axis=*/1, /*start=*/1, /*length=*/2);
      },
      {generic});
  add("pad",
      [](const auto& v) {
        return ag::Pad(v[0], /*axis=*/1, /*before=*/1, /*after=*/2);
      },
      {generic});
  add("index_select",
      [](const auto& v) { return ag::IndexSelect(v[0], /*axis=*/1,
                                                 {2, 0, 0}); },
      {generic});
  add("huber_loss",
      [](const auto& v) { return ag::HuberLoss(v[0], v[1], /*delta=*/10.0); },
      {generic, generic_b});
  return cases;
}

TEST(GradCheckSweep, EveryRegisteredLabelHasACheckedEntry) {
  const std::vector<std::string>& labels = ag::RegisteredOpLabels();
  ASSERT_FALSE(labels.empty());
  // Labels are unique.
  std::set<std::string> label_set(labels.begin(), labels.end());
  ASSERT_EQ(label_set.size(), labels.size());

  std::map<std::string, const LabeledOpCase*> table;
  const std::vector<LabeledOpCase> cases = LabeledOpCases();
  for (const LabeledOpCase& entry : cases) {
    ASSERT_TRUE(table.emplace(entry.label, &entry).second)
        << "duplicate sweep entry for label '" << entry.label << "'";
    // Reverse direction: an entry whose label is not registered is stale.
    EXPECT_TRUE(label_set.count(entry.label))
        << "sweep entry '" << entry.label
        << "' does not match any registered op label";
  }
  for (const std::string& label : labels) {
    EXPECT_TRUE(table.count(label))
        << "registered op label '" << label
        << "' has no grad-check entry — add one to LabeledOpCases()";
  }
}

TEST(GradCheckSweep, AllLabeledOpsPassFiniteDifferences) {
  for (const LabeledOpCase& entry : LabeledOpCases()) {
    SCOPED_TRACE("op label: " + entry.label);

    // The built node must actually carry the label it claims to cover.
    std::vector<Variable> probe;
    probe.reserve(entry.inputs.size());
    for (const Tensor& input : entry.inputs) {
      probe.emplace_back(input.Clone(), /*requires_grad=*/true);
    }
    const Variable built = entry.build(probe);
    ASSERT_NE(built.node(), nullptr);
    ASSERT_NE(built.node()->op, nullptr);
    EXPECT_EQ(std::string(built.node()->op), entry.label);

    const GradCheckResult result = CheckGradients(
        [&](const std::vector<Variable>& v) {
          return WeightedSum(entry.build(v), /*seed=*/991);
        },
        entry.inputs, 1e-6, 1e-5);
    EXPECT_TRUE(result.ok) << result.message;
  }
}

}  // namespace
}  // namespace autocts
