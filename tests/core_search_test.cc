#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/macro_only.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using core::JointSearcher;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;

PreparedData TinyData(uint64_t seed = 31) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = seed;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

SearchOptions TinyOptions() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  return options;
}

TEST(Searcher, ProducesValidGenotypeAndStats) {
  const PreparedData data = TinyData();
  JointSearcher searcher(TinyOptions());
  const SearchResult result = searcher.Search(data);
  EXPECT_TRUE(result.genotype.Validate().ok());
  EXPECT_EQ(result.genotype.num_blocks(), 2);
  EXPECT_EQ(result.genotype.nodes_per_block, 3);
  EXPECT_GT(result.search_seconds, 0.0);
  EXPECT_GT(result.estimated_memory_mb, 0.0);
  EXPECT_GT(result.supernet_parameters, 0);
  EXPECT_GT(result.final_validation_loss, 0.0);
}

TEST(Searcher, DeterministicForFixedSeed) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.seed = 77;
  const SearchResult a = JointSearcher(options).Search(data);
  const SearchResult b = JointSearcher(options).Search(data);
  EXPECT_EQ(a.genotype, b.genotype);
}

TEST(Searcher, ArchitectureParametersActuallyMove) {
  // After a few steps of Algorithm 1 the alpha/beta/gamma values must have
  // left their near-zero initialization.
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.epochs = 1;
  options.max_batches_per_epoch = 6;
  // Probe via two searches with different theta learning rates: a zero LR
  // keeps the (seeded) initial architecture, a high LR changes it.
  options.theta_learning_rate = 0.0;
  const SearchResult frozen = JointSearcher(options).Search(data);
  options.theta_learning_rate = 0.5;
  const SearchResult moved = JointSearcher(options).Search(data);
  // The same seed means identical init; only the theta updates differ. They
  // may still derive the same genotype by chance, but the validation losses
  // must differ because theta changed.
  EXPECT_NE(frozen.final_validation_loss, moved.final_validation_loss);
}

TEST(Searcher, WithoutMacroSearchYieldsHomogeneousSequentialStack) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.use_macro = false;
  options.supernet.macro_blocks = 3;
  const SearchResult result = JointSearcher(options).Search(data);
  ASSERT_EQ(result.genotype.num_blocks(), 3);
  // All blocks identical (homogeneous) and chained sequentially.
  EXPECT_EQ(result.genotype.blocks[0], result.genotype.blocks[1]);
  EXPECT_EQ(result.genotype.blocks[1], result.genotype.blocks[2]);
  EXPECT_EQ(result.genotype.block_inputs, (std::vector<int64_t>{0, 1, 2}));
}

TEST(Searcher, FullOperatorSetSearchesMoreOperators) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.supernet.op_set = core::FullOperatorSet();
  options.max_batches_per_epoch = 2;
  options.epochs = 1;
  const SearchResult result = JointSearcher(options).Search(data);
  EXPECT_TRUE(result.genotype.Validate().ok());
  // The supernet for the 12-op space has roughly twice the parameters of
  // the compact 6-op space (the "w/o design principles" cost blow-up).
  SearchOptions compact = TinyOptions();
  compact.max_batches_per_epoch = 2;
  compact.epochs = 1;
  const SearchResult compact_result = JointSearcher(compact).Search(data);
  EXPECT_GT(result.supernet_parameters,
            compact_result.supernet_parameters * 3 / 2);
}

TEST(Searcher, AutoStgPresetUsesRestrictedSpace) {
  const SearchOptions options = core::AutoStgLiteOptions();
  EXPECT_EQ(options.supernet.op_set.name, "autostg");
  EXPECT_FALSE(options.use_macro);
  const PreparedData data = TinyData();
  SearchOptions tiny = options;
  tiny.supernet.micro_nodes = 3;
  tiny.supernet.macro_blocks = 2;
  tiny.supernet.hidden_dim = 8;
  tiny.epochs = 1;
  tiny.batch_size = 8;
  tiny.max_batches_per_epoch = 3;
  const SearchResult result = JointSearcher(tiny).Search(data);
  ASSERT_TRUE(result.genotype.Validate().ok());
  for (const auto& block : result.genotype.blocks) {
    for (const auto& edge : block.edges) {
      EXPECT_TRUE(edge.op == "conv1d" || edge.op == "dgcn" ||
                  edge.op == "identity")
          << edge.op;
    }
  }
}

TEST(Evaluator, TrainsDerivedModelFromScratch) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  const SearchResult search = JointSearcher(options).Search(data);
  models::TrainConfig train_config;
  train_config.epochs = 2;
  train_config.batch_size = 8;
  train_config.max_batches_per_epoch = 8;
  const models::EvalResult eval = core::EvaluateGenotype(
      search.genotype, data, /*hidden_dim=*/8, train_config);
  EXPECT_GT(eval.average.mae, 0.0);
  EXPECT_GT(eval.parameter_count, 0);
  EXPECT_EQ(eval.per_horizon.size(), 3u);
}

TEST(Evaluator, GenotypeTransfersAcrossDatasets) {
  // Table 35: a genotype searched on one dataset can be instantiated and
  // trained on another with different N and graph.
  const PreparedData source = TinyData(31);
  const SearchResult search = JointSearcher(TinyOptions()).Search(source);

  data::TrafficFlowConfig flow_config;
  flow_config.num_nodes = 6;  // Different node count.
  flow_config.num_steps = 300;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  const PreparedData target = models::PrepareData(
      data::GenerateTrafficFlow(flow_config), window, 0.6, 0.2);
  models::TrainConfig train_config;
  train_config.epochs = 1;
  train_config.batch_size = 8;
  train_config.max_batches_per_epoch = 4;
  const models::EvalResult eval =
      core::EvaluateGenotype(search.genotype, target, 8, train_config);
  EXPECT_GT(eval.average.mae, 0.0);
}

TEST(MacroOnly, SearchesKindsAndTopology) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.epochs = 1;
  options.max_batches_per_epoch = 2;
  const core::MacroOnlyResult result = core::SearchMacroOnly(data, options);
  ASSERT_EQ(result.genotype.block_kinds.size(), 2u);
  const auto kinds = models::HumanDesignedBlockKinds();
  for (const std::string& kind : result.genotype.block_kinds) {
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind), kinds.end());
  }
  for (size_t b = 0; b < result.genotype.block_inputs.size(); ++b) {
    EXPECT_GE(result.genotype.block_inputs[b], 0);
    EXPECT_LE(result.genotype.block_inputs[b], static_cast<int64_t>(b));
  }
  EXPECT_GT(result.search_seconds, 0.0);

  // The discrete model trains.
  std::unique_ptr<models::ForecastingModel> model =
      core::BuildMacroOnlyModel(result.genotype, data, 8, 3);
  models::TrainConfig train_config;
  train_config.epochs = 1;
  train_config.batch_size = 8;
  train_config.max_batches_per_epoch = 3;
  const models::EvalResult eval =
      models::TrainAndEvaluate(model.get(), data, train_config);
  EXPECT_GT(eval.average.mae, 0.0);
}

}  // namespace
}  // namespace autocts
