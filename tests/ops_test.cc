#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "graph/adjacency.h"
#include "ops/attention_ops.h"
#include "ops/gcn_ops.h"
#include "ops/op_registry.h"
#include "ops/rnn_ops.h"
#include "ops/simple_ops.h"
#include "ops/temporal_conv_ops.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using ops::OpContext;
using ops::OpRegistry;

OpContext MakeContext(Rng* rng, int64_t channels = 4, int64_t nodes = 5,
                      bool with_adjacency = true) {
  OpContext context;
  context.channels = channels;
  context.num_nodes = nodes;
  context.rng = rng;
  if (with_adjacency) {
    Rng graph_rng(7);
    const Tensor positions = graph::RandomPositions(nodes, &graph_rng);
    context.adjacency =
        graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  } else {
    context.adaptive =
        std::make_shared<graph::AdaptiveAdjacency>(nodes, 4, rng);
  }
  return context;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(OpRegistry, ContainsAllTable1Operators) {
  const std::vector<std::string> expected = {
      "zero",    "identity", "conv1d", "gdcc",    "lstm",    "gru",
      "trans_t", "inf_t",    "cheb_gcn", "dgcn",  "trans_s", "inf_s"};
  for (const std::string& name : expected) {
    EXPECT_TRUE(OpRegistry::Global().Contains(name)) << name;
  }
}

TEST(OpRegistry, UnknownNameIsNotFound) {
  Rng rng(1);
  OpContext context = MakeContext(&rng);
  EXPECT_FALSE(OpRegistry::Global().Create("warp_drive", context).ok());
  EXPECT_DEATH(ops::CreateOp("warp_drive", context), "");
}

TEST(OpRegistry, CustomOperatorCanBeRegistered) {
  // The extensibility path of Section 3.1 (see examples/custom_operator).
  class DoubleOp : public ops::StOperator {
   public:
    Variable Forward(const Variable& x) override {
      return ag::MulScalar(x, 2.0);
    }
    std::string name() const override { return "test_double"; }
  };
  if (!OpRegistry::Global().Contains("test_double")) {
    OpRegistry::Global().Register(
        "test_double", [](const OpContext&) -> ops::StOperatorPtr {
          return std::make_unique<DoubleOp>();
        });
  }
  Rng rng(2);
  OpContext context = MakeContext(&rng);
  ops::StOperatorPtr op = ops::CreateOp("test_double", context);
  Variable x(Tensor::Ones({1, 2, 5, 4}), false);
  EXPECT_DOUBLE_EQ(op->Forward(x).value().data()[0], 2.0);
}

// ---------------------------------------------------------------------------
// Shape contract: every operator maps [B, T, N, D] -> [B, T, N, D].
// ---------------------------------------------------------------------------

class OpContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OpContractTest, PreservesShapeWithPredefinedGraph) {
  Rng rng(3);
  OpContext context = MakeContext(&rng);
  ops::StOperatorPtr op = ops::CreateOp(GetParam(), context);
  Variable x(Tensor::Rand({2, 6, 5, 4}, &rng, -1.0, 1.0), false);
  const Variable y = op->Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST_P(OpContractTest, PreservesShapeWithLearnedGraph) {
  Rng rng(4);
  OpContext context = MakeContext(&rng, 4, 5, /*with_adjacency=*/false);
  ops::StOperatorPtr op = ops::CreateOp(GetParam(), context);
  Variable x(Tensor::Rand({2, 6, 5, 4}, &rng, -1.0, 1.0), false);
  EXPECT_EQ(op->Forward(x).shape(), x.shape());
}

TEST_P(OpContractTest, GradientsFlowToAllParameters) {
  Rng rng(5);
  OpContext context = MakeContext(&rng);
  ops::StOperatorPtr op = ops::CreateOp(GetParam(), context);
  Variable x(Tensor::Rand({1, 4, 5, 4}, &rng, -1.0, 1.0), false);
  Variable loss = ag::SumAll(ag::Mul(op->Forward(x), op->Forward(x)));
  loss.Backward();
  for (const auto& [name, parameter] : op->NamedParameters()) {
    EXPECT_TRUE(parameter.has_grad()) << GetParam() << "." << name;
  }
}

TEST_P(OpContractTest, InputGradCheck) {
  Rng rng(6);
  OpContext context = MakeContext(&rng, /*channels=*/3, /*nodes=*/3);
  ops::StOperatorPtr op = ops::CreateOp(GetParam(), context);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        const Variable y = op->Forward(v[0]);
        return ag::SumAll(ag::Mul(y, y));
      },
      {Tensor::Rand({1, 4, 3, 3}, &rng, -1.0, 1.0)}, 1e-6, 1e-4);
  EXPECT_TRUE(result.ok) << GetParam() << ": " << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, OpContractTest,
    ::testing::Values("zero", "identity", "conv1d", "gdcc", "lstm", "gru",
                      "trans_t", "inf_t", "cheb_gcn", "dgcn", "trans_s",
                      "inf_s"),
    [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Semantic properties.
// ---------------------------------------------------------------------------

TEST(SimpleOps, ZeroOutputsZerosIdentityPassesThrough) {
  Rng rng(7);
  Tensor x = Tensor::Rand({1, 3, 2, 4}, &rng);
  ops::ZeroOp zero;
  ops::IdentityOp identity;
  EXPECT_EQ(SumAll(Abs(zero.Forward(Variable(x, false)).value())), 0.0);
  EXPECT_TRUE(identity.Forward(Variable(x, false)).value().AllClose(x));
  EXPECT_EQ(zero.NumParameters(), 0);
  EXPECT_EQ(identity.NumParameters(), 0);
}

// T-operators must be causal: outputs before t unaffected by inputs >= t.
class TemporalCausalityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TemporalCausalityTest, NoFutureLeak) {
  Rng rng(8);
  OpContext context = MakeContext(&rng, 3, 2);
  ops::StOperatorPtr op = ops::CreateOp(GetParam(), context);
  op->SetTraining(false);
  Tensor base = Tensor::Rand({1, 8, 2, 3}, &rng);
  Tensor modified = base.Clone();
  const int64_t t_changed = 5;
  for (int64_t t = t_changed; t < 8; ++t) {
    for (int64_t n = 0; n < 2; ++n) {
      for (int64_t d = 0; d < 3; ++d) modified.At({0, t, n, d}) += 5.0;
    }
  }
  const Tensor out_base = op->Forward(Variable(base, false)).value();
  const Tensor out_mod = op->Forward(Variable(modified, false)).value();
  for (int64_t t = 0; t < t_changed; ++t) {
    for (int64_t n = 0; n < 2; ++n) {
      for (int64_t d = 0; d < 3; ++d) {
        EXPECT_NEAR(out_base.At({0, t, n, d}), out_mod.At({0, t, n, d}),
                    1e-9)
            << GetParam() << " leaks at t=" << t;
      }
    }
  }
}

// Note: attention T-operators (trans_t, inf_t) intentionally attend over
// the whole window (Eq. 12/13 have no causal mask), so only the
// convolutional and recurrent families are checked here.
INSTANTIATE_TEST_SUITE_P(CausalFamilies, TemporalCausalityTest,
                         ::testing::Values("conv1d", "gdcc", "lstm", "gru"),
                         [](const auto& info) { return info.param; });

// S-operators act per timestep: the output at time t must only depend on
// inputs at time t.
class SpatialLocalityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SpatialLocalityTest, PerTimestepIndependence) {
  Rng rng(9);
  OpContext context = MakeContext(&rng, 3, 4);
  ops::StOperatorPtr op = ops::CreateOp(GetParam(), context);
  op->SetTraining(false);
  Tensor base = Tensor::Rand({1, 6, 4, 3}, &rng);
  Tensor modified = base.Clone();
  const int64_t t_changed = 2;
  for (int64_t n = 0; n < 4; ++n) {
    for (int64_t d = 0; d < 3; ++d) {
      modified.At({0, t_changed, n, d}) += 5.0;
    }
  }
  const Tensor out_base = op->Forward(Variable(base, false)).value();
  const Tensor out_mod = op->Forward(Variable(modified, false)).value();
  for (int64_t t = 0; t < 6; ++t) {
    if (t == t_changed) continue;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t d = 0; d < 3; ++d) {
        EXPECT_NEAR(out_base.At({0, t, n, d}), out_mod.At({0, t, n, d}), 1e-9)
            << GetParam() << " mixes timesteps at t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SOperators, SpatialLocalityTest,
                         ::testing::Values("cheb_gcn", "dgcn", "trans_s"),
                         [](const auto& info) { return info.param; });

TEST(Dgcn, UsesGraphStructure) {
  // On a two-component graph, perturbing a node in one component must not
  // change DGCN outputs in the other component.
  Rng rng(10);
  Tensor adjacency = Tensor::Zeros({4, 4});
  adjacency.At({0, 1}) = 1.0;
  adjacency.At({1, 0}) = 1.0;  // Component {0, 1}
  adjacency.At({2, 3}) = 1.0;
  adjacency.At({3, 2}) = 1.0;  // Component {2, 3}
  OpContext context;
  context.channels = 3;
  context.num_nodes = 4;
  context.adjacency = adjacency;
  context.rng = &rng;
  ops::DgcnOp op(context);
  Tensor base = Tensor::Rand({1, 2, 4, 3}, &rng);
  Tensor modified = base.Clone();
  for (int64_t d = 0; d < 3; ++d) modified.At({0, 0, 0, d}) += 3.0;
  const Tensor out_base = op.Forward(Variable(base, false)).value();
  const Tensor out_mod = op.Forward(Variable(modified, false)).value();
  for (int64_t n : {2, 3}) {
    for (int64_t d = 0; d < 3; ++d) {
      EXPECT_NEAR(out_base.At({0, 0, n, d}), out_mod.At({0, 0, n, d}), 1e-9);
    }
  }
  // But its own component is affected.
  bool affected = false;
  for (int64_t n : {0, 1}) {
    for (int64_t d = 0; d < 3; ++d) {
      if (std::abs(out_base.At({0, 0, n, d}) - out_mod.At({0, 0, n, d})) >
          1e-9) {
        affected = true;
      }
    }
  }
  EXPECT_TRUE(affected);
}

TEST(Attention, TransformerAttendsGlobally) {
  // Unlike GCN, spatial attention connects all node pairs regardless of the
  // adjacency (Table 2: needs no predefined adjacency matrix).
  Rng rng(11);
  OpContext context = MakeContext(&rng, 3, 4);
  ops::TransformerSOp op(context);
  Tensor base = Tensor::Rand({1, 1, 4, 3}, &rng);
  Tensor modified = base.Clone();
  for (int64_t d = 0; d < 3; ++d) modified.At({0, 0, 0, d}) += 3.0;
  const Tensor out_base = op.Forward(Variable(base, false)).value();
  const Tensor out_mod = op.Forward(Variable(modified, false)).value();
  // Every node's output changes, including non-neighbours.
  for (int64_t n = 1; n < 4; ++n) {
    double diff = 0.0;
    for (int64_t d = 0; d < 3; ++d) {
      diff += std::abs(out_base.At({0, 0, n, d}) - out_mod.At({0, 0, n, d}));
    }
    EXPECT_GT(diff, 1e-9) << "node " << n;
  }
}

TEST(Attention, InformerStaysFiniteOnLongSequences) {
  Rng rng(12);
  OpContext context = MakeContext(&rng, 3, 2);
  context.attention_factor = 1.0;  // u = ceil(ln(T + 1)).
  ops::InformerTOp informer(context);
  Tensor x = Tensor::Rand({1, 24, 2, 3}, &rng);
  const Tensor out = informer.Forward(Variable(x, false)).value();
  EXPECT_EQ(out.shape(), (Shape{1, 24, 2, 3}));
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

TEST(Attention, InformerGradCheckThroughSparsePath) {
  Rng rng(13);
  OpContext context = MakeContext(&rng, 2, 2);
  context.attention_factor = 0.5;  // Force a truly sparse selection.
  ops::InformerTOp informer(context);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        const Variable y = informer.Forward(v[0]);
        return ag::SumAll(ag::Mul(y, y));
      },
      {Tensor::Rand({1, 12, 2, 2}, &rng, -1.0, 1.0)}, 1e-6, 1e-4);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(RnnCells, LstmStateShapesAndBoundedActivations) {
  Rng rng(14);
  ops::LstmCell cell(3, 5, &rng);
  ops::LstmCell::State state;
  state.h = Variable(Tensor::Zeros({2, 5}), false);
  state.c = Variable(Tensor::Zeros({2, 5}), false);
  Variable x(Tensor::Rand({2, 3}, &rng, -2.0, 2.0), false);
  for (int step = 0; step < 20; ++step) {
    state = cell.Forward(x, state);
  }
  EXPECT_EQ(state.h.shape(), (Shape{2, 5}));
  // Hidden state of an LSTM is bounded in (-1, 1).
  EXPECT_LT(MaxAll(Abs(state.h.value())), 1.0);
}

TEST(RnnCells, GruInterpolatesBetweenStateAndCandidate) {
  Rng rng(15);
  ops::GruCell cell(2, 4, &rng);
  Variable h(Tensor::Rand({3, 4}, &rng, -0.5, 0.5), false);
  Variable x(Tensor::Rand({3, 2}, &rng, -0.5, 0.5), false);
  const Variable h_next = cell.Forward(x, h);
  EXPECT_EQ(h_next.shape(), (Shape{3, 4}));
  EXPECT_LT(MaxAll(Abs(h_next.value())), 1.0 + 1e-9);
}

TEST(OpContext, GcnWithoutAnyGraphDies) {
  Rng rng(17);
  OpContext context;
  context.channels = 2;
  context.num_nodes = 3;
  context.rng = &rng;
  EXPECT_DEATH(ops::CreateOp("dgcn", context), "");
  EXPECT_DEATH(ops::CreateOp("cheb_gcn", context), "");
}

}  // namespace
}  // namespace autocts
