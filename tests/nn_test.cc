#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "nn/activations.h"
#include "nn/batch_norm.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using nn::BatchNorm;
using nn::Dropout;
using nn::LayerNorm;
using nn::Linear;
using nn::TemporalConv1d;

TEST(Module, ParameterRegistryIsRecursive) {
  Rng rng(1);
  struct Net : nn::Module {
    Net(Rng* rng) : fc1(3, 4, rng), fc2(4, 2, rng) {
      RegisterModule("fc1", &fc1);
      RegisterModule("fc2", &fc2);
    }
    Linear fc1;
    Linear fc2;
  } net(&rng);
  const auto named = net.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc1.weight");
  EXPECT_EQ(named[3].first, "fc2.bias");
  EXPECT_EQ(net.NumParameters(), 3 * 4 + 4 + 4 * 2 + 2);
}

TEST(Module, TrainingFlagPropagates) {
  Rng rng(2);
  struct Net : nn::Module {
    Net() : dropout(0.5, 1) { RegisterModule("dropout", &dropout); }
    Dropout dropout;
  } net;
  EXPECT_TRUE(net.dropout.training());
  net.SetTraining(false);
  EXPECT_FALSE(net.dropout.training());
}

TEST(Init, XavierBoundsDependOnFans) {
  Rng rng(3);
  Tensor w = nn::XavierUniform({64, 64}, 64, 64, &rng);
  const double limit = std::sqrt(6.0 / 128.0);
  EXPECT_LE(MaxAll(w), limit);
  EXPECT_GE(MinAll(w), -limit);
  EXPECT_GT(MaxAll(Abs(w)), limit * 0.5);  // Actually spreads out.
}

TEST(Linear, ShapeAndValues) {
  Rng rng(4);
  Linear fc(3, 2, &rng);
  Variable x(Tensor::Ones({5, 3}), false);
  const Variable y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
  // All rows identical for identical inputs.
  for (int64_t r = 1; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(y.value().At({r, 0}), y.value().At({0, 0}));
  }
}

TEST(Linear, AppliesToLastDimOfHigherRank) {
  Rng rng(5);
  Linear fc(3, 7, &rng);
  Variable x(Tensor::Ones({2, 4, 5, 3}), false);
  EXPECT_EQ(fc.Forward(x).shape(), (Shape{2, 4, 5, 7}));
}

TEST(Linear, GradCheck) {
  Rng rng(6);
  Linear fc(3, 2, &rng, /*with_bias=*/true);
  const std::vector<Variable> params = fc.Parameters();
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        // Probe input gradients; the parameter path is exercised via the
        // training tests.
        return ag::SumAll(ag::Mul(fc.Forward(v[0]), fc.Forward(v[0])));
      },
      {Tensor::Rand({2, 3}, &rng, -1.0, 1.0)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(TemporalConv, CausalPreservesLength) {
  Rng rng(7);
  TemporalConv1d conv(4, 6, /*kernel_size=*/2, /*dilation=*/1,
                      /*causal=*/true, &rng);
  Variable x(Tensor::Rand({2, 12, 3, 4}, &rng), false);
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{2, 12, 3, 6}));
}

TEST(TemporalConv, ValidModeShrinksLength) {
  Rng rng(8);
  TemporalConv1d conv(4, 4, /*kernel_size=*/3, /*dilation=*/2,
                      /*causal=*/false, &rng);
  Variable x(Tensor::Rand({1, 12, 2, 4}, &rng), false);
  EXPECT_EQ(conv.Forward(x).dim(1), 12 - (3 - 1) * 2);
}

TEST(TemporalConv, CausalityNoLeakFromFuture) {
  // Changing inputs at time t must not change outputs before t.
  Rng rng(9);
  TemporalConv1d conv(2, 2, /*kernel_size=*/3, /*dilation=*/2,
                      /*causal=*/true, &rng);
  Tensor base = Tensor::Rand({1, 10, 1, 2}, &rng);
  Tensor modified = base.Clone();
  const int64_t t_changed = 6;
  for (int64_t t = t_changed; t < 10; ++t) {
    for (int64_t d = 0; d < 2; ++d) modified.At({0, t, 0, d}) += 10.0;
  }
  const Tensor out_base = conv.Forward(Variable(base, false)).value();
  const Tensor out_mod = conv.Forward(Variable(modified, false)).value();
  for (int64_t t = 0; t < t_changed; ++t) {
    for (int64_t d = 0; d < 2; ++d) {
      EXPECT_DOUBLE_EQ(out_base.At({0, t, 0, d}), out_mod.At({0, t, 0, d}))
          << "leak at t=" << t;
    }
  }
  // And outputs at/after the change do differ.
  EXPECT_FALSE(out_base.AllClose(out_mod, 1e-9));
}

TEST(TemporalConv, MatchesManualComputation) {
  Rng rng(10);
  TemporalConv1d conv(1, 1, /*kernel_size=*/2, /*dilation=*/1,
                      /*causal=*/true, &rng, /*with_bias=*/false);
  // Extract the kernel.
  const Tensor w = conv.Parameters()[0].value();  // [2, 1, 1]
  Tensor x({1, 4, 1, 1});
  for (int64_t t = 0; t < 4; ++t) x.At({0, t, 0, 0}) = t + 1.0;
  const Tensor y = conv.Forward(Variable(x, false)).value();
  // y_t = w0 * x_{t-1} + w1 * x_t (x_{-1} = 0).
  EXPECT_NEAR(y.At({0, 0, 0, 0}), w.data()[1] * 1.0, 1e-12);
  EXPECT_NEAR(y.At({0, 2, 0, 0}),
              w.data()[0] * 2.0 + w.data()[1] * 3.0, 1e-12);
}

TEST(TemporalConv, GradCheck) {
  Rng rng(11);
  TemporalConv1d conv(2, 2, 2, 1, true, &rng);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        const Variable y = conv.Forward(v[0]);
        return ag::SumAll(ag::Mul(y, y));
      },
      {Tensor::Rand({1, 5, 2, 2}, &rng, -1.0, 1.0)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(BatchNorm, NormalizesPerChannelInTraining) {
  Rng rng(12);
  BatchNorm bn(3);
  Tensor x = Tensor::Rand({64, 3}, &rng, 5.0, 9.0);
  const Tensor y = bn.Forward(Variable(x, false)).value();
  for (int64_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t r = 0; r < 64; ++r) mean += y.At({r, c});
    mean /= 64.0;
    for (int64_t r = 0; r < 64; ++r) {
      var += (y.At({r, c}) - mean) * (y.At({r, c}) - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, RunningStatsConvergeAndDriveEvalMode) {
  Rng rng(13);
  BatchNorm bn(2);
  for (int step = 0; step < 200; ++step) {
    Tensor x = Tensor::Rand({32, 2}, &rng, 2.0, 4.0);  // mean ~3
    bn.Forward(Variable(x, false));
  }
  EXPECT_NEAR(bn.running_mean().data()[0], 3.0, 0.15);
  bn.SetTraining(false);
  // In eval mode an input equal to the running mean maps to ~beta = 0.
  Tensor probe({1, 2});
  probe.data()[0] = bn.running_mean().data()[0];
  probe.data()[1] = bn.running_mean().data()[1];
  const Tensor y = bn.Forward(Variable(probe, false)).value();
  EXPECT_NEAR(y.data()[0], 0.0, 1e-6);
}

TEST(BatchNorm, WorksOn4dTensors) {
  Rng rng(14);
  BatchNorm bn(4);
  Variable x(Tensor::Rand({2, 5, 3, 4}, &rng), false);
  EXPECT_EQ(bn.Forward(x).shape(), (Shape{2, 5, 3, 4}));
}

TEST(LayerNorm, NormalizesLastDim) {
  Rng rng(15);
  LayerNorm ln(8);
  const Tensor y =
      ln.Forward(Variable(Tensor::Rand({4, 8}, &rng, -3.0, 7.0), false))
          .value();
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    for (int64_t c = 0; c < 8; ++c) mean += y.At({r, c});
    EXPECT_NEAR(mean / 8.0, 0.0, 1e-9);
  }
}

TEST(LayerNorm, GradCheck) {
  Rng rng(16);
  LayerNorm ln(4);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        const Variable y = ln.Forward(v[0]);
        return ag::SumAll(ag::Mul(y, y));
      },
      {Tensor::Rand({3, 4}, &rng, -1.0, 1.0)}, 1e-6, 1e-4);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout dropout(0.5, 1);
  dropout.SetTraining(false);
  Rng rng(17);
  Tensor x = Tensor::Rand({100}, &rng);
  EXPECT_TRUE(dropout.Forward(Variable(x, false)).value().AllClose(x));
}

TEST(Dropout, TrainingZeroesAndRescales) {
  Dropout dropout(0.5, 2);
  Tensor x = Tensor::Ones({10000});
  const Tensor y = dropout.Forward(Variable(x, false)).value();
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0) {
      ++zeros;
    } else {
      EXPECT_DOUBLE_EQ(y.data()[i], 2.0);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(zeros, 5000, 200);
  // Expectation is preserved.
  EXPECT_NEAR(MeanAll(y), 1.0, 0.05);
}

TEST(Activations, GluHalvesChannelsAndGates) {
  Tensor x = Tensor::FromVector({1, 4}, {2.0, 3.0, 0.0, 100.0});
  const Tensor y = nn::Glu(Variable(x, false)).value();
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_NEAR(y.data()[0], 2.0 * 0.5, 1e-9);       // sigmoid(0) = 0.5
  EXPECT_NEAR(y.data()[1], 3.0 * 1.0, 1e-6);       // sigmoid(100) ~= 1
  EXPECT_DEATH(nn::Glu(Variable(Tensor::Ones({1, 3}), false)), "");
}

TEST(Activations, LeakyReluSlope) {
  Tensor x = Tensor::FromVector({2}, {-2.0, 3.0});
  const Tensor y = nn::LeakyRelu(Variable(x, false), 0.1).value();
  EXPECT_NEAR(y.data()[0], -0.2, 1e-12);
  EXPECT_NEAR(y.data()[1], 3.0, 1e-12);
}

TEST(Activations, GluGradCheck) {
  Rng rng(18);
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(nn::Glu(v[0]));
      },
      {Tensor::Rand({3, 6}, &rng, -1.0, 1.0)}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace autocts
