#include <gtest/gtest.h>

#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/st_blocks.h"
#include "models/trainer.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using models::CreateBaseline;
using models::ModelContext;
using models::PreparedData;

ModelContext SmallContext(bool with_adjacency = true, int64_t q = 4) {
  ModelContext context;
  context.num_nodes = 5;
  context.in_features = 2;
  context.input_length = 8;
  context.output_length = q;
  context.hidden_dim = 8;
  context.seed = 11;
  if (with_adjacency) {
    Rng rng(3);
    const Tensor positions = graph::RandomPositions(5, &rng);
    context.adjacency = graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  }
  return context;
}

// ---------------------------------------------------------------------------
// Every baseline honours the ForecastingModel contract.
// ---------------------------------------------------------------------------

class BaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineTest, OutputShapeWithPredefinedGraph) {
  const ModelContext context = SmallContext(true);
  models::ForecastingModelPtr model = CreateBaseline(GetParam(), context);
  Rng rng(1);
  Variable x(Tensor::Rand({3, 8, 5, 2}, &rng, -1.0, 1.0), false);
  EXPECT_EQ(model->Forward(x).shape(), (Shape{3, 4, 5, 1}));
}

TEST_P(BaselineTest, OutputShapeWithLearnedGraph) {
  const ModelContext context = SmallContext(false);
  models::ForecastingModelPtr model = CreateBaseline(GetParam(), context);
  Rng rng(2);
  Variable x(Tensor::Rand({2, 8, 5, 2}, &rng, -1.0, 1.0), false);
  EXPECT_EQ(model->Forward(x).shape(), (Shape{2, 4, 5, 1}));
}

TEST_P(BaselineTest, HasParametersAndGradientsEverywhere) {
  const ModelContext context = SmallContext(true);
  models::ForecastingModelPtr model = CreateBaseline(GetParam(), context);
  EXPECT_GT(model->NumParameters(), 50);
  Rng rng(4);
  Variable x(Tensor::Rand({2, 8, 5, 2}, &rng, -1.0, 1.0), false);
  Variable loss = ag::SumAll(ag::Mul(model->Forward(x), model->Forward(x)));
  loss.Backward();
  int64_t with_grad = 0;
  for (const auto& [name, parameter] : model->NamedParameters()) {
    if (parameter.has_grad()) ++with_grad;
  }
  // Every parameter participates (a dead branch would signal a wiring bug).
  EXPECT_EQ(with_grad,
            static_cast<int64_t>(model->NamedParameters().size()));
}

TEST_P(BaselineTest, DeterministicGivenSeedAtEval) {
  const ModelContext context = SmallContext(true);
  models::ForecastingModelPtr a = CreateBaseline(GetParam(), context);
  models::ForecastingModelPtr b = CreateBaseline(GetParam(), context);
  a->SetTraining(false);
  b->SetTraining(false);
  Rng rng(5);
  Variable x(Tensor::Rand({1, 8, 5, 2}, &rng, -1.0, 1.0), false);
  EXPECT_TRUE(a->Forward(x).value().AllClose(b->Forward(x).value(), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineTest,
                         ::testing::Values("DCRNN", "STGCN", "GraphWaveNet",
                                           "AGCRN", "LSTNet", "TPA-LSTM",
                                           "MTGNN"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ModelZoo, UnknownNameDies) {
  EXPECT_DEATH(CreateBaseline("AlexNet", SmallContext()), "");
}

// ---------------------------------------------------------------------------
// Human-designed ST-blocks (also the macro-only search units).
// ---------------------------------------------------------------------------

class StBlockTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StBlockTest, PreservesShape) {
  Rng rng(6);
  ops::OpContext context;
  context.channels = 8;
  context.num_nodes = 5;
  context.rng = &rng;
  Rng graph_rng(3);
  const Tensor positions = graph::RandomPositions(5, &graph_rng);
  context.adjacency = graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  std::unique_ptr<models::StBlock> block =
      models::CreateStBlock(GetParam(), context);
  Variable x(Tensor::Rand({2, 6, 5, 8}, &rng, -1.0, 1.0), false);
  EXPECT_EQ(block->Forward(x).shape(), x.shape());
  EXPECT_GT(block->NumParameters(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllBlocks, StBlockTest,
                         ::testing::ValuesIn(models::HumanDesignedBlockKinds()),
                         [](const auto& info) { return info.param; });

TEST(StBlocks, UnknownKindDies) {
  Rng rng(7);
  ops::OpContext context;
  context.rng = &rng;
  EXPECT_DEATH(models::CreateStBlock("resnet_block", context), "");
}

// ---------------------------------------------------------------------------
// Trainer.
// ---------------------------------------------------------------------------

PreparedData SmallPreparedData() {
  data::TrafficSpeedConfig config;
  config.num_nodes = 5;
  config.num_steps = 400;
  config.seed = 21;
  data::WindowSpec window;
  window.input_length = 8;
  window.output_length = 4;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

TEST(Trainer, PrepareDataNormalizesAndSplits) {
  const PreparedData prepared = SmallPreparedData();
  EXPECT_EQ(prepared.num_nodes, 5);
  EXPECT_EQ(prepared.in_features, 2);
  ASSERT_EQ(prepared.splits.size(), 3u);
  EXPECT_GT(prepared.train().NumSamples(), prepared.test().NumSamples());
  // Normalized speed has roughly zero mean (masked fit).
  EXPECT_GT(prepared.scaler.mean(0), 10.0);
  EXPECT_GT(prepared.scaler.stddev(0), 1.0);
}

TEST(Trainer, TrainingReducesLossAndReportsMetrics) {
  const PreparedData prepared = SmallPreparedData();
  ModelContext context = SmallContext(true);
  context.adjacency = prepared.adjacency;
  models::ForecastingModelPtr model = CreateBaseline("STGCN", context);

  // Loss of the untrained model on the validation split.
  const double before = models::EvaluateLoss(model.get(), prepared,
                                             prepared.validation(), 16);
  models::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 16;
  train_config.max_batches_per_epoch = 12;
  const models::EvalResult result =
      models::TrainAndEvaluate(model.get(), prepared, train_config);
  const double after = models::EvaluateLoss(model.get(), prepared,
                                            prepared.validation(), 16);
  EXPECT_LT(after, before);
  EXPECT_GT(result.average.mae, 0.0);
  EXPECT_GE(result.average.rmse, result.average.mae);
  EXPECT_EQ(result.per_horizon.size(), 4u);
  EXPECT_GT(result.parameter_count, 0);
  EXPECT_GT(result.train_seconds_per_epoch, 0.0);
  EXPECT_GT(result.inference_ms_per_window, 0.0);
}

TEST(Trainer, PredictReturnsDenormalizedPairs) {
  const PreparedData prepared = SmallPreparedData();
  ModelContext context = SmallContext(true);
  context.adjacency = prepared.adjacency;
  models::ForecastingModelPtr model = CreateBaseline("GraphWaveNet", context);
  Tensor predictions, truths;
  models::Predict(model.get(), prepared, prepared.test(), 16, &predictions,
                  &truths);
  EXPECT_EQ(predictions.shape(), truths.shape());
  EXPECT_EQ(predictions.dim(0), prepared.test().NumSamples());
  // Denormalized truths live in the raw speed range, not z-scores.
  EXPECT_GT(MaxAll(truths), 20.0);
}

TEST(Trainer, BeatsNaiveMeanPredictorAfterTraining) {
  const PreparedData prepared = SmallPreparedData();
  ModelContext context = SmallContext(true);
  context.adjacency = prepared.adjacency;
  models::ForecastingModelPtr model = CreateBaseline("GraphWaveNet", context);
  models::TrainConfig train_config;
  train_config.epochs = 5;
  train_config.batch_size = 16;
  const models::EvalResult result =
      models::TrainAndEvaluate(model.get(), prepared, train_config);

  // Naive predictor: always forecast the training mean.
  Tensor predictions, truths;
  models::Predict(model.get(), prepared, prepared.test(), 16, &predictions,
                  &truths);
  const Tensor mean_prediction =
      Tensor::Full(truths.shape(), prepared.scaler.mean(0));
  const double naive_mae =
      metrics::ComputeMetrics(mean_prediction, truths).mae;
  EXPECT_LT(result.average.mae, naive_mae);
}

}  // namespace
}  // namespace autocts
