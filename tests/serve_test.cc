// Suite for the forecast-serving engine (src/serve/):
//   * artifact codec round trips byte-for-byte and rejects corruption —
//     every single-byte flip and every truncation of a full artifact must
//     fail to decode, and a corrupt newest generation falls back to
//     "<path>.prev";
//   * the serving determinism contract — PredictBatch is bit-identical,
//     row for row, to sequential Predicts, the ForecastServer reproduces
//     the same bits at 1/2/4 workers under micro-batching, and repeated
//     identical predicts return identical bits (no RNG in inference);
//   * export -> load -> serve fidelity including BatchNorm running
//     statistics (non-trainable buffers) restored from the state dict;
//   * the streaming ring buffer matches the stateless path tick for tick;
//   * queue back-pressure, deadline expiry, cancellation, and graceful
//     shutdown semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/cancellation.h"
#include "common/file_io.h"
#include "common/metrics_registry.h"
#include "core/evaluator.h"
#include "data/synthetic/generators.h"
#include "serve/forecast_server.h"
#include "testing/fixtures.h"

namespace autocts {
namespace {

using serve::ArtifactMeta;
using serve::ForecastServer;
using serve::InferenceSession;
using serve::ModelArtifact;
using serve::ServeOptions;

constexpr int64_t kHiddenDim = 8;

// One tiny trained model + its exported artifact, shared across the suite
// (training dominates the runtime; every test below is read-only on it).
// The genotype variant contains inf_s / inf_t edges on purpose: ProbSparse
// attention selects an active-query set per sample, which is the hardest
// op to keep batch-decoupled.
struct ServeFixture {
  models::PreparedData data;
  std::unique_ptr<core::DerivedModel> model;
  ModelArtifact artifact;
};

const ServeFixture& Fixture() {
  static const ServeFixture* fixture = [] {
    auto* f = new ServeFixture{fixtures::TinyPreparedData(53), nullptr, {}};
    models::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 8;
    config.max_batches_per_epoch = 2;
    config.seed = 11;
    StatusOr<core::TrainedGenotype> trained = core::TrainGenotypeWithStatus(
        fixtures::MakeCandidateGenotype(2), f->data, kHiddenDim, config);
    AUTOCTS_CHECK(trained.ok()) << trained.status().ToString();
    f->model = std::move(trained.value().model);
    f->artifact =
        serve::MakeModelArtifact(*f->model, f->data, kHiddenDim, config.seed);
    return f;
  }();
  return *fixture;
}

// Distinct raw (denormalized) windows with the artifact's geometry, sliced
// stride-1 from a fresh synthetic series.
std::vector<Tensor> RawWindows(int64_t count, uint64_t seed = 99) {
  const ArtifactMeta& meta = Fixture().artifact.meta;
  data::TrafficSpeedConfig config;
  config.num_nodes = meta.num_nodes;
  config.num_steps = meta.input_length + count + 8;
  config.seed = seed;
  const data::CtsDataset dataset = data::GenerateTrafficSpeed(config);
  AUTOCTS_CHECK_EQ(dataset.num_features(), meta.in_features);
  std::vector<Tensor> windows;
  windows.reserve(count);
  for (int64_t w = 0; w < count; ++w) {
    Tensor window({meta.input_length, meta.num_nodes, meta.in_features});
    for (int64_t p = 0; p < meta.input_length; ++p) {
      for (int64_t n = 0; n < meta.num_nodes; ++n) {
        for (int64_t f = 0; f < meta.in_features; ++f) {
          window.At({p, n, f}) = dataset.values.At({w + p, n, f});
        }
      }
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

std::unique_ptr<InferenceSession> MakeSession() {
  StatusOr<std::unique_ptr<InferenceSession>> session =
      InferenceSession::Create(Fixture().artifact);
  AUTOCTS_CHECK(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

void ExpectBitsEqual(const Tensor& a, const Tensor& b,
                     const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(double)),
            0)
      << label;
}

std::string TempPath(const std::string& name) {
  return fixtures::TempPath("serve_test", name);
}

// ---------------------------------------------------------------------------
// Artifact codec.
// ---------------------------------------------------------------------------

TEST(ModelArtifact, EncodeDecodeRoundTripIsByteExact) {
  const ModelArtifact& artifact = Fixture().artifact;
  const std::string text = serve::EncodeModelArtifact(artifact);
  StatusOr<ModelArtifact> decoded = serve::DecodeModelArtifact(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(serve::EncodeModelArtifact(decoded.value()), text);
  EXPECT_EQ(decoded.value().meta.num_nodes, artifact.meta.num_nodes);
  EXPECT_EQ(decoded.value().meta.seed, artifact.meta.seed);
  EXPECT_EQ(decoded.value().state_dict, artifact.state_dict);
  EXPECT_EQ(decoded.value().genotype.ToText(), artifact.genotype.ToText());
}

TEST(ModelArtifact, StateDictCarriesBatchNormBuffers) {
  // The derived model wraps ops in BatchNorm, so a faithful artifact must
  // carry its running statistics as "buffer = " records.
  const ModelArtifact& artifact = Fixture().artifact;
  EXPECT_NE(artifact.state_dict.find("buffer = "), std::string::npos);
  EXPECT_NE(artifact.state_dict.find("running_mean"), std::string::npos);
  EXPECT_NE(artifact.state_dict.find("running_var"), std::string::npos);
}

TEST(ModelArtifact, RebuiltModelMatchesOriginalBitForBit) {
  const ServeFixture& fixture = Fixture();
  StatusOr<std::unique_ptr<core::DerivedModel>> rebuilt =
      serve::BuildModelFromArtifact(fixture.artifact);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_FALSE(rebuilt.value()->training());

  const auto original_params = fixture.model->NamedParameters();
  const auto rebuilt_params = rebuilt.value()->NamedParameters();
  ASSERT_EQ(original_params.size(), rebuilt_params.size());
  for (size_t i = 0; i < original_params.size(); ++i) {
    ASSERT_EQ(original_params[i].first, rebuilt_params[i].first);
    ExpectBitsEqual(original_params[i].second.value(),
                    rebuilt_params[i].second.value(),
                    "param " + original_params[i].first);
  }
  const auto original_buffers = fixture.model->NamedBuffers();
  const auto rebuilt_buffers = rebuilt.value()->NamedBuffers();
  ASSERT_EQ(original_buffers.size(), rebuilt_buffers.size());
  ASSERT_FALSE(original_buffers.empty());
  for (size_t i = 0; i < original_buffers.size(); ++i) {
    ASSERT_EQ(original_buffers[i].first, rebuilt_buffers[i].first);
    ExpectBitsEqual(*original_buffers[i].second, *rebuilt_buffers[i].second,
                    "buffer " + original_buffers[i].first);
  }
}

// A compact but complete artifact — every record type present, small enough
// that the exhaustive byte-level sweeps below stay fast. Decode validates
// the document (CRC, format, field ranges), not state-dict consistency, so
// the embedded state text can be short.
ModelArtifact CompactArtifact() {
  ModelArtifact artifact;
  artifact.meta.num_nodes = 3;
  artifact.meta.in_features = 2;
  artifact.meta.input_length = 4;
  artifact.meta.output_length = 2;
  artifact.meta.horizon = 0;
  artifact.meta.target_feature = 0;
  artifact.meta.hidden_dim = 4;
  artifact.meta.seed = 17;
  artifact.meta.zero_is_missing = true;
  artifact.genotype = fixtures::MakeCandidateGenotype(0);
  artifact.scaler.mask_null = true;
  artifact.scaler.null_value = 0.0;
  artifact.scaler.means = {1.5, -2.25};
  artifact.scaler.stddevs = {0.5, 3.0};
  artifact.state_dict = "format = fake\nparam = tiny\n";
  artifact.adjacency = Tensor::Ones({3, 3});
  return artifact;
}

TEST(ModelArtifact, EverySingleByteFlipIsRejected) {
  const std::string text = serve::EncodeModelArtifact(CompactArtifact());
  ASSERT_TRUE(serve::DecodeModelArtifact(text).ok());
  int64_t rejected = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    std::string corrupt = text;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    if (!serve::DecodeModelArtifact(corrupt).ok()) ++rejected;
  }
  EXPECT_EQ(rejected, static_cast<int64_t>(text.size()));
}

TEST(ModelArtifact, EveryTruncationIsRejected) {
  const std::string text = serve::EncodeModelArtifact(CompactArtifact());
  for (size_t len = 0; len < text.size(); ++len) {
    EXPECT_FALSE(serve::DecodeModelArtifact(text.substr(0, len)).ok())
        << "truncation to " << len << " bytes decoded";
  }
}

TEST(ModelArtifact, TrainedArtifactRejectsSpotCorruptions) {
  // The exhaustive sweep runs on the compact artifact; the full trained
  // artifact gets targeted damage at both ends and in the dense payload.
  const std::string text = serve::EncodeModelArtifact(Fixture().artifact);
  ASSERT_TRUE(serve::DecodeModelArtifact(text).ok());
  for (size_t i : {size_t{0}, text.size() / 3, text.size() / 2,
                   2 * text.size() / 3, text.size() - 2}) {
    std::string corrupt = text;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_FALSE(serve::DecodeModelArtifact(corrupt).ok())
        << "flip at " << i << " decoded";
  }
  EXPECT_FALSE(
      serve::DecodeModelArtifact(text.substr(0, text.size() / 2)).ok());
}

TEST(ModelArtifact, LoadFallsBackToPreviousGeneration) {
  const std::string path = TempPath("fallback.artifact");
  fixtures::RemoveGenerations(path);

  ModelArtifact first = CompactArtifact();
  ModelArtifact second = CompactArtifact();
  second.meta.seed = 18;
  ASSERT_TRUE(serve::SaveModelArtifact(first, path).ok());
  ASSERT_TRUE(serve::SaveModelArtifact(second, path).ok());

  // Intact newest generation wins.
  bool used_prev = true;
  StatusOr<ModelArtifact> loaded =
      serve::LoadModelArtifactOrPrev(path, &used_prev);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(used_prev);
  EXPECT_EQ(loaded.value().meta.seed, 18u);

  // Corrupt newest -> previous generation honored.
  StatusOr<std::string> on_disk = ReadFileToString(path);
  ASSERT_TRUE(on_disk.ok());
  std::string corrupt = on_disk.value();
  corrupt[corrupt.size() / 2] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(path, corrupt, false).ok());
  loaded = serve::LoadModelArtifactOrPrev(path, &used_prev);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(used_prev);
  EXPECT_EQ(loaded.value().meta.seed, 17u);

  // Both generations corrupt -> load fails.
  ASSERT_TRUE(AtomicWriteFile(path + ".prev", corrupt, false).ok());
  EXPECT_FALSE(serve::LoadModelArtifactOrPrev(path, &used_prev).ok());
  fixtures::RemoveGenerations(path);
}

// ---------------------------------------------------------------------------
// Inference determinism.
// ---------------------------------------------------------------------------

TEST(InferenceSession, ModelStaysInEvalMode) {
  std::unique_ptr<InferenceSession> session = MakeSession();
  EXPECT_FALSE(session->model().training());
}

TEST(InferenceSession, RepeatedPredictIsBitIdentical) {
  // No RNG in inference: two identical predicts must return identical bits
  // (eval-mode Dropout is the identity; BatchNorm uses running stats).
  std::unique_ptr<InferenceSession> session = MakeSession();
  const std::vector<Tensor> windows = RawWindows(1);
  StatusOr<Tensor> first = session->Predict(windows[0]);
  StatusOr<Tensor> second = session->Predict(windows[0]);
  ASSERT_TRUE(first.ok() && second.ok());
  ExpectBitsEqual(first.value(), second.value(), "repeated predict");
}

TEST(InferenceSession, BatchedForwardMatchesSequentialBitForBit) {
  std::unique_ptr<InferenceSession> session = MakeSession();
  const ArtifactMeta& meta = Fixture().artifact.meta;
  const int64_t k = 8;
  const std::vector<Tensor> windows = RawWindows(k);
  const int64_t window_size =
      meta.input_length * meta.num_nodes * meta.in_features;
  Tensor stacked(
      {k, meta.input_length, meta.num_nodes, meta.in_features});
  for (int64_t i = 0; i < k; ++i) {
    std::memcpy(stacked.data() + i * window_size, windows[i].data(),
                static_cast<size_t>(window_size) * sizeof(double));
  }
  StatusOr<Tensor> batched = session->PredictBatch(stacked);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  const int64_t forecast_size = meta.output_length * meta.num_nodes;
  for (int64_t i = 0; i < k; ++i) {
    StatusOr<Tensor> single = session->Predict(windows[i]);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    ASSERT_EQ(single.value().size(), forecast_size);
    EXPECT_EQ(std::memcmp(batched.value().data() + i * forecast_size,
                          single.value().data(),
                          static_cast<size_t>(forecast_size) *
                              sizeof(double)),
              0)
        << "batched row " << i << " differs from the sequential forward";
  }
}

TEST(InferenceSession, RejectsWrongWindowShape) {
  std::unique_ptr<InferenceSession> session = MakeSession();
  const ArtifactMeta& meta = Fixture().artifact.meta;
  Tensor wrong({meta.input_length + 1, meta.num_nodes, meta.in_features});
  EXPECT_FALSE(session->Predict(wrong).ok());
  Tensor wrong_batch(
      {2, meta.input_length, meta.num_nodes + 1, meta.in_features});
  EXPECT_FALSE(session->PredictBatch(wrong_batch).ok());
}

TEST(InferenceSession, RingBufferMatchesStatelessPredict) {
  std::unique_ptr<InferenceSession> session = MakeSession();
  const ArtifactMeta& meta = Fixture().artifact.meta;
  const int64_t extra = 3;
  const std::vector<Tensor> windows = RawWindows(extra + 1);
  // windows[0..extra] are stride-1 slices of one series: tick t of the
  // stream is row (meta.input_length - 1) of window t shifted — rebuild the
  // underlying series from the first window plus each later window's
  // newest row.
  std::vector<Tensor> ticks;
  for (int64_t p = 0; p < meta.input_length; ++p) {
    Tensor tick({meta.num_nodes, meta.in_features});
    std::memcpy(tick.data(),
                windows[0].data() + p * meta.num_nodes * meta.in_features,
                static_cast<size_t>(meta.num_nodes * meta.in_features) *
                    sizeof(double));
    ticks.push_back(std::move(tick));
  }
  for (int64_t w = 1; w <= extra; ++w) {
    Tensor tick({meta.num_nodes, meta.in_features});
    std::memcpy(tick.data(),
                windows[w].data() + (meta.input_length - 1) *
                                        meta.num_nodes * meta.in_features,
                static_cast<size_t>(meta.num_nodes * meta.in_features) *
                    sizeof(double));
    ticks.push_back(std::move(tick));
  }

  int64_t fed = 0;
  for (; fed < meta.input_length - 1; ++fed) {
    session->Observe(ticks[fed]);
    EXPECT_FALSE(session->Ready());
    EXPECT_FALSE(session->PredictNext().ok());
  }
  for (int64_t w = 0; w <= extra; ++w) {
    session->Observe(ticks[fed++]);
    ASSERT_TRUE(session->Ready());
    ExpectBitsEqual(session->CurrentWindow(), windows[w],
                    "window after tick " + std::to_string(fed));
    StatusOr<Tensor> streamed = session->PredictNext();
    StatusOr<Tensor> stateless = session->Predict(windows[w]);
    ASSERT_TRUE(streamed.ok() && stateless.ok());
    ExpectBitsEqual(streamed.value(), stateless.value(),
                    "streamed forecast " + std::to_string(w));
  }
  EXPECT_EQ(session->ticks_observed(), fed);
  session->ResetWindow();
  EXPECT_FALSE(session->Ready());
}

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

TEST(ForecastServer, WorkerSweepIsBitIdenticalToSequential) {
  const int64_t k = 12;
  const std::vector<Tensor> windows = RawWindows(k);

  // Reference: sequential single-window forwards on one session.
  std::unique_ptr<InferenceSession> session = MakeSession();
  std::vector<Tensor> reference;
  for (const Tensor& window : windows) {
    StatusOr<Tensor> forecast = session->Predict(window);
    ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
    reference.push_back(std::move(forecast).value());
  }

  for (int64_t workers : {1, 2, 4}) {
    ServeOptions options;
    options.workers = workers;
    options.max_batch = 8;
    ForecastServer server(Fixture().artifact, options);
    ASSERT_TRUE(server.Start().ok());
    std::vector<std::future<StatusOr<Tensor>>> futures;
    for (const Tensor& window : windows) {
      futures.push_back(server.Submit(window.Clone()));
    }
    for (int64_t i = 0; i < k; ++i) {
      StatusOr<Tensor> result = futures[i].get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectBitsEqual(result.value(), reference[i],
                      "workers=" + std::to_string(workers) + " request " +
                          std::to_string(i));
    }
    server.Stop();
    const ForecastServer::Stats stats = server.stats();
    EXPECT_EQ(stats.requests_served, k) << "workers=" << workers;
    EXPECT_GE(stats.batches, 1) << "workers=" << workers;
    EXPECT_LE(stats.max_batch_observed, options.max_batch);
  }
}

// Regression: a zero/negative knob (these arrive straight from CLI flags)
// must be a typed InvalidArgument naming the knob at Start() — it used to
// be a process-aborting CHECK in the constructor.
TEST(ForecastServer, StartRejectsNonPositiveOptionsWithInvalidArgument) {
  const struct {
    int64_t workers, max_batch, queue_capacity;
    const char* knob;
  } cases[] = {
      {0, 8, 256, "workers"},
      {-2, 8, 256, "workers"},
      {1, 0, 256, "max_batch"},
      {1, -1, 256, "max_batch"},
      {1, 8, 0, "queue_capacity"},
      {1, 8, -64, "queue_capacity"},
  };
  for (const auto& bad : cases) {
    ServeOptions options;
    options.workers = bad.workers;
    options.max_batch = bad.max_batch;
    options.queue_capacity = bad.queue_capacity;
    ForecastServer server(Fixture().artifact, options);
    const Status started = server.Start();
    ASSERT_FALSE(started.ok()) << bad.knob;
    EXPECT_EQ(started.code(), StatusCode::kInvalidArgument) << bad.knob;
    EXPECT_NE(started.message().find(bad.knob), std::string::npos)
        << "message \"" << started.message()
        << "\" does not name the offending knob";
    // A server whose Start() was rejected behaves like one never started:
    // submissions fail typed, Stop() is a safe no-op.
    StatusOr<Tensor> result = server.Predict(RawWindows(1)[0]);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    server.Stop();
  }
  // The boundary value 1/1/1 is valid and serves.
  ServeOptions minimal;
  minimal.workers = 1;
  minimal.max_batch = 1;
  minimal.queue_capacity = 1;
  ForecastServer server(Fixture().artifact, minimal);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Predict(RawWindows(1)[0]).ok());
  server.Stop();
}

TEST(ForecastServer, StopIsGracefulAndRejectsLateSubmissions) {
  ServeOptions options;
  options.workers = 2;
  ForecastServer server(Fixture().artifact, options);
  ASSERT_TRUE(server.Start().ok());
  const std::vector<Tensor> windows = RawWindows(4);
  std::vector<std::future<StatusOr<Tensor>>> futures;
  for (const Tensor& window : windows) {
    futures.push_back(server.Submit(window.Clone()));
  }
  server.Stop();
  // Every accepted request was served before the workers exited.
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  StatusOr<Tensor> late = server.Predict(windows[0]);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server.stats().rejected, 1);
}

TEST(ForecastServer, ExpiredDeadlinesFailWithoutForwarding) {
  ServeOptions options;
  options.workers = 1;
  ForecastServer server(Fixture().artifact, options);
  ASSERT_TRUE(server.Start().ok());
  const std::vector<Tensor> windows = RawWindows(3);
  std::vector<std::future<StatusOr<Tensor>>> futures;
  for (const Tensor& window : windows) {
    futures.push_back(server.Submit(window.Clone(), Deadline::After(-1.0)));
  }
  for (auto& future : futures) {
    StatusOr<Tensor> result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
  server.Stop();
  EXPECT_EQ(server.stats().expired, 3);
  EXPECT_EQ(server.stats().requests_served, 0);
}

TEST(ForecastServer, CancelledTokenFailsNewSubmissions) {
  CancellationToken token;
  ServeOptions options;
  options.workers = 1;
  options.cancel = &token;
  ForecastServer server(Fixture().artifact, options);
  ASSERT_TRUE(server.Start().ok());
  token.Cancel();
  const std::vector<Tensor> windows = RawWindows(1);
  StatusOr<Tensor> result = server.Predict(windows[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  server.Stop();
  EXPECT_GE(server.stats().cancelled, 1);
}

TEST(ForecastServer, BurstConservesEveryRequest) {
  // Back-pressure integration: with a tiny queue, a burst larger than
  // capacity sees some immediate Unavailable rejections; every accepted
  // request must still resolve OK and the books must balance exactly.
  ServeOptions options;
  options.workers = 1;
  options.max_batch = 4;
  options.queue_capacity = 2;
  ForecastServer server(Fixture().artifact, options);
  ASSERT_TRUE(server.Start().ok());
  const int64_t total = 32;
  const std::vector<Tensor> windows = RawWindows(4);
  std::vector<std::future<StatusOr<Tensor>>> futures;
  for (int64_t i = 0; i < total; ++i) {
    futures.push_back(server.Submit(windows[i % windows.size()].Clone()));
  }
  int64_t ok_count = 0;
  int64_t rejected_count = 0;
  for (auto& future : futures) {
    StatusOr<Tensor> result = future.get();
    if (result.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
      ++rejected_count;
    }
  }
  server.Stop();
  EXPECT_EQ(ok_count + rejected_count, total);
  EXPECT_EQ(server.stats().requests_served, ok_count);
  EXPECT_EQ(server.stats().rejected, rejected_count);
}

TEST(ForecastServer, MetricsFlushOnStop) {
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.workers = 2;
  options.metrics = &registry;
  ForecastServer server(Fixture().artifact, options);
  ASSERT_TRUE(server.Start().ok());
  const std::vector<Tensor> windows = RawWindows(6);
  std::vector<std::future<StatusOr<Tensor>>> futures;
  for (const Tensor& window : windows) {
    futures.push_back(server.Submit(window.Clone()));
  }
  for (auto& future : futures) ASSERT_TRUE(future.get().ok());
  server.Stop();
  EXPECT_EQ(registry.GetCounter(serve::kMetricRequestsServed)->value(), 6);
  EXPECT_GE(registry.GetCounter(serve::kMetricBatches)->value(), 1);
}

// ---------------------------------------------------------------------------
// Bounded queue unit coverage (the deterministic back-pressure seam).
// ---------------------------------------------------------------------------

TEST(BoundedQueue, TryPushFailsExactlyWhenFull) {
  BoundedQueue<int> queue(2);
  int a = 1;
  int b = 2;
  int c = 3;
  EXPECT_TRUE(queue.TryPush(a));
  EXPECT_TRUE(queue.TryPush(b));
  EXPECT_FALSE(queue.TryPush(c));
  EXPECT_EQ(queue.size(), 2u);
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(8, &batch), 2u);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);
  EXPECT_TRUE(queue.TryPush(c));
}

TEST(BoundedQueue, PopBatchRespectsMaxItems) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.TryPush(v));
  }
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(3, &batch), 3u);
  EXPECT_EQ(queue.PopBatch(3, &batch), 2u);
  EXPECT_EQ(batch.size(), 5u);
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> queue(4);
  int v = 7;
  ASSERT_TRUE(queue.TryPush(v));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(v));
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(4, &batch), 1u);  // drains queued work first
  EXPECT_EQ(queue.PopBatch(4, &batch), 0u);  // then reports closed
}

}  // namespace
}  // namespace autocts
