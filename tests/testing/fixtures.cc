#include "testing/fixtures.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic/generators.h"

namespace autocts::fixtures {

models::PreparedData TinyPreparedData(uint64_t seed) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = seed;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

core::Genotype MakeCandidateGenotype(int64_t variant) {
  const std::vector<std::string> ops = {"identity", "gdcc", "inf_s", "dgcn",
                                        "inf_t"};
  const auto op = [&](int64_t i) {
    return ops[(variant + i) % static_cast<int64_t>(ops.size())];
  };
  core::Genotype genotype;
  genotype.nodes_per_block = 3;
  for (int64_t b = 0; b < 2; ++b) {
    core::BlockGenotype block;
    block.edges.push_back({0, 1, op(b)});
    block.edges.push_back({1, 2, op(b + 1)});
    block.edges.push_back({0, 2, op(b + 2)});
    genotype.blocks.push_back(block);
  }
  genotype.block_inputs = {0, 1};
  AUTOCTS_CHECK(genotype.Validate().ok());
  return genotype;
}

std::vector<core::Genotype> MakeCandidateGenotypes(int64_t count) {
  std::vector<core::Genotype> candidates;
  for (int64_t i = 0; i < count; ++i) {
    candidates.push_back(MakeCandidateGenotype(i));
  }
  return candidates;
}

std::string TempPath(const std::string& prefix, const std::string& name) {
  return ::testing::TempDir() + prefix + "_" + name;
}

void RemoveGenerations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace autocts::fixtures
