// Shared builders for the crash-safety / scheduler / e2e / serving suites:
// one tiny-but-real synthetic dataset, hand-built candidate genotypes in
// the exact shape Derive() emits, and temp-file helpers that clean up every
// generation an atomic writer may leave behind (<path>, <path>.prev,
// <path>.tmp).
//
// Dataset seeds stay explicit at every call site on purpose: the suites
// were written against different datasets (checkpoint_test uses 31,
// eval_scheduler_test 47) and their bit-exactness baselines depend on it.
#ifndef AUTOCTS_TESTS_TESTING_FIXTURES_H_
#define AUTOCTS_TESTS_TESTING_FIXTURES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/genotype.h"
#include "models/trainer.h"

namespace autocts::fixtures {

// 4-node / 300-step synthetic traffic-speed dataset windowed to P=6, Q=3
// with a 70/10/20 split — small enough for sub-second training runs while
// still exercising normalization and the multi-step head.
models::PreparedData TinyPreparedData(uint64_t seed);

// A hand-built candidate in the exact shape Derive() emits for
// micro_nodes = 3 / edges_per_node = 2, with operator choices varied per
// variant so every candidate trains to a different result.
core::Genotype MakeCandidateGenotype(int64_t variant);
std::vector<core::Genotype> MakeCandidateGenotypes(int64_t count);

// "<gtest temp dir><prefix>_<name>".
std::string TempPath(const std::string& prefix, const std::string& name);

// Removes every generation an atomic writer may have left at `path`.
void RemoveGenerations(const std::string& path);

}  // namespace autocts::fixtures

#endif  // AUTOCTS_TESTS_TESTING_FIXTURES_H_
