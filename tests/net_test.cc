// End-to-end suite for the TCP serving front-end (src/net/): real sockets
// on loopback, the real client library, and (for the signal test) the real
// shipped CLI binary.
//
// The central contract: a forecast fetched over the wire is byte-identical
// to the in-process InferenceSession::PredictBatch result — at every tested
// workers x max_batch combination, under concurrent clients. The transport
// moves IEEE-754 bit images, so there is no tolerance anywhere in this
// file; every comparison is memcmp.
//
// Failure modes get the same treatment as success: expired wire deadlines,
// cancelled tokens, a shed (full or stopped) queue, corrupt frames,
// mid-frame disconnects, and SIGTERM during in-flight requests must each
// produce the exact typed outcome the in-process API produces — or, for
// the transport-level cases, leave the server serving.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "core/evaluator.h"
#include "data/synthetic/generators.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "net/wire_codec.h"
#include "serve/model_artifact.h"
#include "testing/fixtures.h"

namespace autocts {
namespace {

using net::ForecastClient;
using net::ForecastClientOptions;
using net::TcpForecastServer;
using net::TcpServeOptions;
using serve::ArtifactMeta;
using serve::InferenceSession;
using serve::ModelArtifact;

#ifndef AUTOCTS_CLI_PATH
#error "AUTOCTS_CLI_PATH must be defined by the build"
#endif

constexpr int64_t kHiddenDim = 8;

// One tiny trained artifact shared across the suite (training dominates
// the runtime; every test is read-only on it). Variant 2 includes the
// ProbSparse attention ops — the hardest to keep batch-decoupled, hence
// the sharpest probe of the wire's byte-identity claim.
const ModelArtifact& Artifact() {
  static const ModelArtifact* artifact = [] {
    const models::PreparedData data = fixtures::TinyPreparedData(53);
    models::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 8;
    config.max_batches_per_epoch = 2;
    config.seed = 11;
    StatusOr<core::TrainedGenotype> trained = core::TrainGenotypeWithStatus(
        fixtures::MakeCandidateGenotype(2), data, kHiddenDim, config);
    AUTOCTS_CHECK(trained.ok()) << trained.status().ToString();
    return new ModelArtifact(serve::MakeModelArtifact(
        *trained.value().model, data, kHiddenDim, config.seed));
  }();
  return *artifact;
}

std::vector<Tensor> RawWindows(int64_t count, uint64_t seed = 99) {
  const ArtifactMeta& meta = Artifact().meta;
  data::TrafficSpeedConfig config;
  config.num_nodes = meta.num_nodes;
  config.num_steps = meta.input_length + count + 8;
  config.seed = seed;
  const data::CtsDataset dataset = data::GenerateTrafficSpeed(config);
  std::vector<Tensor> windows;
  windows.reserve(count);
  for (int64_t w = 0; w < count; ++w) {
    Tensor window({meta.input_length, meta.num_nodes, meta.in_features});
    for (int64_t p = 0; p < meta.input_length; ++p) {
      for (int64_t n = 0; n < meta.num_nodes; ++n) {
        for (int64_t f = 0; f < meta.in_features; ++f) {
          window.At({p, n, f}) = dataset.values.At({w + p, n, f});
        }
      }
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

// The in-process ground truth: all windows through one PredictBatch call.
std::vector<Tensor> ReferenceForecasts(const std::vector<Tensor>& windows) {
  const ArtifactMeta& meta = Artifact().meta;
  StatusOr<std::unique_ptr<InferenceSession>> session =
      InferenceSession::Create(Artifact());
  AUTOCTS_CHECK(session.ok()) << session.status().ToString();
  const int64_t k = static_cast<int64_t>(windows.size());
  Tensor stacked = Tensor::Uninitialized(
      {k, meta.input_length, meta.num_nodes, meta.in_features});
  const int64_t window_size =
      meta.input_length * meta.num_nodes * meta.in_features;
  for (int64_t i = 0; i < k; ++i) {
    std::copy(windows[i].data(), windows[i].data() + window_size,
              stacked.data() + i * window_size);
  }
  StatusOr<Tensor> forecasts = session.value()->PredictBatch(stacked);
  AUTOCTS_CHECK(forecasts.ok()) << forecasts.status().ToString();
  const int64_t forecast_size = meta.output_length * meta.num_nodes;
  std::vector<Tensor> rows;
  for (int64_t i = 0; i < k; ++i) {
    Tensor row =
        Tensor::Uninitialized({meta.output_length, meta.num_nodes});
    std::copy(forecasts.value().data() + i * forecast_size,
              forecasts.value().data() + (i + 1) * forecast_size,
              row.data());
    rows.push_back(std::move(row));
  }
  return rows;
}

void ExpectBitsEqual(const Tensor& a, const Tensor& b,
                     const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(double)),
            0)
      << label;
}

TcpServeOptions LoopbackOptions(int64_t workers, int64_t max_batch) {
  TcpServeOptions options;
  options.serve.workers = workers;
  options.serve.max_batch = max_batch;
  options.port = 0;  // ephemeral
  return options;
}

ForecastClientOptions ClientFor(const TcpForecastServer& server) {
  ForecastClientOptions options;
  options.port = server.port();
  options.retry.max_attempts = 1;  // exact status assertions: never retry
  options.request_timeout_seconds = 60.0;
  return options;
}

// ---------------------------------------------------------------------------
// Byte-identity across the wire.

// The acceptance gate: at every workers x max_batch combination, windows
// fetched through real sockets by concurrent clients come back
// bit-identical to one in-process PredictBatch over the same windows.
TEST(NetTest, LoopbackMatchesInProcessPredictBatchAcrossSweep) {
  const std::vector<Tensor> windows = RawWindows(12);
  const std::vector<Tensor> references = ReferenceForecasts(windows);
  const std::pair<int64_t, int64_t> sweep[] = {
      {1, 1}, {1, 4}, {2, 1}, {2, 8}, {4, 8}};
  for (const auto& [workers, max_batch] : sweep) {
    TcpForecastServer server(Artifact(),
                             LoopbackOptions(workers, max_batch));
    ASSERT_TRUE(server.Start().ok());
    constexpr int kClients = 3;
    std::vector<Tensor> remote(windows.size());
    std::atomic<int64_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        ForecastClientOptions client_options = ClientFor(server);
        client_options.retry.max_attempts = 3;
        ForecastClient client(client_options);
        while (true) {
          const int64_t i = next.fetch_add(1);
          if (i >= static_cast<int64_t>(windows.size())) return;
          StatusOr<Tensor> forecast = client.Predict(windows[i]);
          if (!forecast.ok()) {
            ADD_FAILURE() << "request " << i << ": "
                          << forecast.status().ToString();
            failed.store(true);
            return;
          }
          remote[i] = std::move(forecast).value();
        }
      });
    }
    for (std::thread& thread : clients) thread.join();
    ASSERT_FALSE(failed.load());
    const std::string config = "workers=" + std::to_string(workers) +
                               " max_batch=" + std::to_string(max_batch);
    for (size_t i = 0; i < windows.size(); ++i) {
      ExpectBitsEqual(remote[i], references[i],
                      config + " window " + std::to_string(i));
    }
    server.Stop();
    const TcpForecastServer::Stats stats = server.stats();
    EXPECT_EQ(stats.requests_decoded,
              static_cast<int64_t>(windows.size()));
    EXPECT_EQ(stats.responses_sent, static_cast<int64_t>(windows.size()));
    EXPECT_EQ(stats.protocol_errors, 0);
  }
}

// Repeating the same window over one connection returns identical bits
// every time — no per-request state leaks into the forward.
TEST(NetTest, RepeatedRequestsAreBitStable) {
  const std::vector<Tensor> windows = RawWindows(1);
  TcpForecastServer server(Artifact(), LoopbackOptions(2, 4));
  ASSERT_TRUE(server.Start().ok());
  ForecastClient client(ClientFor(server));
  ASSERT_TRUE(client.Connect().ok());
  StatusOr<Tensor> first = client.Predict(windows[0]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int repeat = 0; repeat < 5; ++repeat) {
    StatusOr<Tensor> again = client.Predict(windows[0]);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectBitsEqual(again.value(), first.value(),
                    "repeat " + std::to_string(repeat));
  }
  server.Stop();
}

// ---------------------------------------------------------------------------
// Typed failure outcomes across the wire.

TEST(NetTest, ExpiredWireDeadlineComesBackAsDeadlineExceeded) {
  TcpForecastServer server(Artifact(), LoopbackOptions(1, 1));
  ASSERT_TRUE(server.Start().ok());
  ForecastClient client(ClientFor(server));
  ASSERT_TRUE(client.Connect().ok());
  // A negative budget is already expired when the server decodes it — the
  // deterministic version of "the deadline fired while queued".
  const StatusOr<Tensor> forecast =
      client.Predict(RawWindows(1)[0], /*deadline_seconds=*/-1.0);
  ASSERT_FALSE(forecast.ok());
  EXPECT_EQ(forecast.status().code(), StatusCode::kDeadlineExceeded);
  // The connection survives a typed failure; the next request succeeds.
  EXPECT_TRUE(client.Predict(RawWindows(1)[0]).ok());
  server.Stop();
  EXPECT_EQ(server.stats().error_frames_sent, 1);
}

TEST(NetTest, CancelledTokenFailsRequestsWithCancelledOverTheWire) {
  CancellationToken token;
  TcpServeOptions options = LoopbackOptions(1, 1);
  options.serve.cancel = &token;
  TcpForecastServer server(Artifact(), options);
  ASSERT_TRUE(server.Start().ok());
  ForecastClient client(ClientFor(server));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Predict(RawWindows(1)[0]).ok());  // serving normally
  token.Cancel();
  const StatusOr<Tensor> forecast = client.Predict(RawWindows(1)[0]);
  ASSERT_FALSE(forecast.ok());
  EXPECT_EQ(forecast.status().code(), StatusCode::kCancelled);
  server.Stop();
}

// Load shedding crosses the wire unchanged: a Submit rejected by the inner
// server becomes a kUnavailable status frame. Stopping the inner server
// makes the rejection deterministic (a real full-queue race is probed
// separately below).
TEST(NetTest, ShedRequestsComeBackAsUnavailable) {
  TcpForecastServer server(Artifact(), LoopbackOptions(1, 1));
  ASSERT_TRUE(server.Start().ok());
  server.forecast_server().Stop();
  ForecastClient client(ClientFor(server));
  ASSERT_TRUE(client.Connect().ok());
  const StatusOr<Tensor> forecast = client.Predict(RawWindows(1)[0]);
  ASSERT_FALSE(forecast.ok());
  EXPECT_EQ(forecast.status().code(), StatusCode::kUnavailable);
  server.Stop();
}

// A burst against a capacity-1 queue: every request either succeeds with
// the exact reference bits or is shed with kUnavailable — conservation,
// no third outcome, and the server keeps serving afterwards.
TEST(NetTest, QueueFullBurstConservesEveryRequest) {
  TcpServeOptions options = LoopbackOptions(1, 1);
  options.serve.queue_capacity = 1;
  TcpForecastServer server(Artifact(), options);
  ASSERT_TRUE(server.Start().ok());
  const std::vector<Tensor> windows = RawWindows(1);
  const std::vector<Tensor> references = ReferenceForecasts(windows);
  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::atomic<int64_t> ok_count{0};
  std::atomic<int64_t> shed_count{0};
  std::atomic<int64_t> other_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      ForecastClient client(ClientFor(server));
      if (!client.Connect().ok()) {
        other_count.fetch_add(kPerClient);
        return;
      }
      for (int r = 0; r < kPerClient; ++r) {
        const StatusOr<Tensor> forecast = client.Predict(windows[0]);
        if (forecast.ok()) {
          ok_count.fetch_add(1);
          ExpectBitsEqual(forecast.value(), references[0], "burst");
        } else if (forecast.status().code() == StatusCode::kUnavailable) {
          shed_count.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected outcome: "
                        << forecast.status().ToString();
          other_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok_count.load() + shed_count.load() + other_count.load(),
            kClients * kPerClient);
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_GE(ok_count.load(), 1);
  // Still serving after the burst.
  ForecastClient client(ClientFor(server));
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Predict(windows[0]).ok());
  server.Stop();
  // The wire's shed count mirrors the inner server's rejected count
  // exactly (plus nothing): the status frame is the only shed channel.
  EXPECT_EQ(server.stats().error_frames_sent,
            server.forecast_server().stats().rejected);
}

// ---------------------------------------------------------------------------
// Hostile transport behavior, via raw sockets.

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  AUTOCTS_CHECK_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  AUTOCTS_CHECK_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  AUTOCTS_CHECK_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

std::string RawReadAll(int fd) {
  std::string bytes;
  char chunk[4096];
  while (true) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return bytes;  // EOF or error: the server closed on us
    bytes.append(chunk, static_cast<size_t>(got));
  }
}

// A corrupt frame gets a typed kInvalidArgument status frame and then the
// connection is closed — after damage the stream framing cannot be
// trusted, so the server refuses to resynchronize.
TEST(NetTest, CorruptFrameGetsStatusReplyAndConnectionClose) {
  TcpForecastServer server(Artifact(), LoopbackOptions(1, 1));
  ASSERT_TRUE(server.Start().ok());
  std::string frame = net::EncodePredictRequest(RawWindows(1)[0]);
  frame[net::kFrameHeaderBytes] ^= 0x40;  // flip one payload bit
  const int fd = RawConnect(server.port());
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  const std::string reply = RawReadAll(fd);  // returns at server close
  ::close(fd);
  const StatusOr<net::Frame> decoded = net::DecodeFrame(reply);
  ASSERT_TRUE(decoded.ok()) << "reply was not one well-formed frame";
  EXPECT_EQ(decoded.value().type, net::FrameType::kStatus);
  EXPECT_EQ(decoded.value().status.code(), StatusCode::kInvalidArgument);
  // The server counted the protocol error and keeps serving others.
  EXPECT_EQ(server.stats().protocol_errors, 1);
  ForecastClient client(ClientFor(server));
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Predict(RawWindows(1)[0]).ok());
  server.Stop();
}

// A client that vanishes mid-frame must not wedge or kill the server.
TEST(NetTest, MidFrameDisconnectIsCountedAndServerSurvives) {
  TcpForecastServer server(Artifact(), LoopbackOptions(1, 1));
  ASSERT_TRUE(server.Start().ok());
  const std::string frame = net::EncodePredictRequest(RawWindows(1)[0]);
  // Once inside the header, once inside the payload.
  for (const size_t keep : {size_t{5}, net::kFrameHeaderBytes + 3}) {
    const int fd = RawConnect(server.port());
    ASSERT_EQ(::send(fd, frame.data(), keep, 0),
              static_cast<ssize_t>(keep));
    ::close(fd);  // vanish
  }
  // The handler threads observe the EOF asynchronously.
  for (int spin = 0;
       spin < 200 && server.stats().disconnects_mid_frame < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.stats().disconnects_mid_frame, 2);
  ForecastClient client(ClientFor(server));
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Predict(RawWindows(1)[0]).ok());
  server.Stop();
}

// An empty connect/close (a health checker, a port scanner) is a clean
// EOF, not a protocol error.
TEST(NetTest, EmptyConnectionIsNotAProtocolError) {
  TcpForecastServer server(Artifact(), LoopbackOptions(1, 1));
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port());
  ::close(fd);
  for (int spin = 0;
       spin < 200 && server.stats().connections_accepted < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.Stop();
  EXPECT_EQ(server.stats().protocol_errors, 0);
  EXPECT_EQ(server.stats().disconnects_mid_frame, 0);
}

// ---------------------------------------------------------------------------
// Options validation (the satellite): the TCP layer propagates the inner
// server's typed rejection instead of crashing on a bad knob.

TEST(NetTest, BadServeOptionsFailTcpStartWithInvalidArgument) {
  TcpServeOptions options = LoopbackOptions(0, 8);  // workers = 0
  TcpForecastServer server(Artifact(), options);
  const Status started = server.Start();
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(started.message().find("workers"), std::string::npos);
  server.Stop();  // must be safe after a failed Start
}

// ---------------------------------------------------------------------------
// SIGTERM during in-flight requests, against the real CLI binary.

std::string TempPath(const std::string& name) {
  return fixtures::TempPath("net_test", name);
}

// Serve-tcp under fire: launch the shipped binary, keep a request stream
// going, SIGTERM it mid-flight. The process must drain (every response that
// was sent is byte-exact), report its stats line, and exit with the
// repo-wide SIGTERM code 143.
TEST(NetTest, SigtermDuringInflightRequestsDrainsAndExits143) {
  const std::string artifact_path = TempPath("model.artifact");
  ASSERT_TRUE(serve::SaveModelArtifact(Artifact(), artifact_path).ok());
  const std::string log_path = TempPath("serve.log");

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: stdout/stderr to the log the parent polls for the port.
    std::freopen(log_path.c_str(), "w", stdout);
    std::freopen(log_path.c_str(), "w", stderr);
    ::execl(AUTOCTS_CLI_PATH, AUTOCTS_CLI_PATH, "serve-tcp", "--artifact",
            artifact_path.c_str(), "--port", "0",
            static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }

  // Parent: wait for "listening on 127.0.0.1:PORT".
  int port = 0;
  for (int spin = 0; spin < 600 && port == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::ifstream log(log_path);
    std::string line;
    while (std::getline(log, line)) {
      const std::string prefix = "listening on 127.0.0.1:";
      if (line.rfind(prefix, 0) == 0) {
        port = std::atoi(line.c_str() + prefix.size());
        break;
      }
    }
  }
  ASSERT_GT(port, 0) << "server never reported its port";

  const std::vector<Tensor> windows = RawWindows(1);
  const std::vector<Tensor> references = ReferenceForecasts(windows);

  // Keep requests in flight while the signal lands.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::atomic<bool> mismatch{false};
  std::thread pump([&] {
    ForecastClientOptions options;
    options.port = port;
    options.retry.max_attempts = 1;
    options.request_timeout_seconds = 30.0;
    ForecastClient client(options);
    if (!client.Connect().ok()) return;
    while (!stop.load()) {
      StatusOr<Tensor> forecast = client.Predict(windows[0]);
      if (!forecast.ok()) return;  // shutdown reached us: stream over
      if (forecast.value().shape() != references[0].shape() ||
          std::memcmp(forecast.value().data(), references[0].data(),
                      static_cast<size_t>(references[0].size()) *
                          sizeof(double)) != 0) {
        mismatch.store(true);
      }
      completed.fetch_add(1);
    }
  });

  // Let at least one response land so the signal truly arrives mid-stream.
  for (int spin = 0; spin < 600 && completed.load() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(completed.load(), 1);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);

  int raw_status = 0;
  ASSERT_EQ(::waitpid(pid, &raw_status, 0), pid);
  stop.store(true);
  pump.join();

  ASSERT_TRUE(WIFEXITED(raw_status));
  EXPECT_EQ(WEXITSTATUS(raw_status), 143);  // 128 + SIGTERM
  EXPECT_FALSE(mismatch.load())
      << "a drained response differed from the in-process reference";
  // The drain stats line made it out before exit.
  std::ifstream log(log_path);
  std::stringstream buffer;
  buffer << log.rdbuf();
  EXPECT_NE(buffer.str().find("serve-tcp drained:"), std::string::npos);
  fixtures::RemoveGenerations(artifact_path);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace autocts
