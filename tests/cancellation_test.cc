// Cooperative-cancellation / deadline / graceful-shutdown suite
// (common/cancellation.h, common/signal_handler.h) and its integration into
// the searcher, trainer, and eval scheduler:
//   * token semantics — first reason wins, reset, status mapping;
//   * deadlines on the FakeClock — exact virtual-time expiry, AfterBudget;
//   * CheckInterrupt priority — cancel over deadline over step budget;
//   * signal handlers — a raised SIGTERM cancels the installed token and
//     ShutdownExitCode reports 128+sig;
//   * a cancelled search writes a final checkpoint whose resume reproduces
//     the uninterrupted run bit-for-bit, at 1 and 4 threads;
//   * a step-budgeted candidate fails alone with DEADLINE_EXCEEDED while
//     the other candidates' metrics stay bit-identical to a clean run, and
//     the coded failure survives a checkpoint round-trip.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/signal_handler.h"
#include "common/stopwatch.h"
#include "core/eval_scheduler.h"
#include "core/search_checkpoint.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"

namespace autocts {
namespace {

using core::EvalScheduler;
using core::EvalSchedulerOptions;
using core::Genotype;
using core::JointSearcher;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveGenerations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".prev").c_str());
}

// ---------------------------------------------------------------------------
// Token semantics.
// ---------------------------------------------------------------------------

TEST(CancellationToken, FirstReasonWins) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  token.Cancel(CancelReason::kDeadline);
  token.Cancel(CancelReason::kShutdown);  // already cancelled: no effect
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancellationToken, ResetRearms) {
  CancellationToken token;
  token.Cancel(CancelReason::kShutdown);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  token.Cancel(CancelReason::kDeadline);
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancellationToken, ToStatusMapsReasonToCode) {
  CancellationToken token;
  token.Cancel(CancelReason::kShutdown);
  EXPECT_EQ(token.ToStatus("ctx").code(), StatusCode::kCancelled);
  token.Reset();
  token.Cancel(CancelReason::kDeadline);
  EXPECT_EQ(token.ToStatus("ctx").code(), StatusCode::kDeadlineExceeded);
}

TEST(Deadline, VirtualTimeExpiry) {
  ScopedFakeClock clock;
  const Deadline deadline = Deadline::After(2.0);
  EXPECT_FALSE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining_seconds(), 2.0);
  FakeClock::Advance(1'999'999'999);
  EXPECT_FALSE(deadline.expired());
  FakeClock::Advance(1);
  EXPECT_TRUE(deadline.expired());
}

TEST(Deadline, ZeroOrNegativeBudgetIsInfinite) {
  EXPECT_TRUE(Deadline::AfterBudget(0.0).infinite());
  EXPECT_TRUE(Deadline::AfterBudget(-1.0).infinite());
  EXPECT_FALSE(Deadline::Infinite().expired());
  EXPECT_FALSE(Deadline::AfterBudget(5.0).infinite());
}

TEST(CheckInterrupt, PriorityCancelOverDeadlineOverBudget) {
  ScopedFakeClock clock;
  CancellationToken token;
  const Deadline expired = Deadline::After(1.0);
  FakeClock::Advance(2'000'000'000);

  // All three tripped: cancel wins.
  token.Cancel(CancelReason::kShutdown);
  EXPECT_EQ(CheckInterrupt(&token, expired, 10, 5, "ctx").code(),
            StatusCode::kCancelled);
  // Deadline and budget tripped: deadline wins.
  EXPECT_EQ(CheckInterrupt(nullptr, expired, 10, 5, "ctx").code(),
            StatusCode::kDeadlineExceeded);
  // Budget only.
  EXPECT_EQ(
      CheckInterrupt(nullptr, Deadline::Infinite(), 10, 5, "ctx").code(),
      StatusCode::kDeadlineExceeded);
  // Budget not yet reached, nothing else set: ok.
  EXPECT_TRUE(
      CheckInterrupt(nullptr, Deadline::Infinite(), 4, 5, "ctx").ok());
  // step_budget 0 = unlimited.
  EXPECT_TRUE(
      CheckInterrupt(nullptr, Deadline::Infinite(), 1'000'000, 0, "ctx").ok());
}

TEST(SignalHandler, RaisedSignalCancelsTokenAndMapsExitCode) {
  CancellationToken token;
  InstallShutdownHandlers(&token);
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kShutdown);
  EXPECT_EQ(LastShutdownSignal(), SIGTERM);
  EXPECT_EQ(ShutdownExitCode(), 128 + SIGTERM);
  UninstallShutdownHandlers();
}

// ---------------------------------------------------------------------------
// Searcher integration.
// ---------------------------------------------------------------------------

PreparedData TinyData(uint64_t seed = 31) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = seed;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

SearchOptions TinySearchOptions() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  return options;
}

TEST(SearchCancellation, StepBudgetReturnsDeadlineExceeded) {
  const PreparedData data = TinyData();
  SearchOptions options = TinySearchOptions();
  options.step_budget = 3;
  StatusOr<SearchResult> result =
      JointSearcher(options).SearchWithStatus(data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SearchCancellation, CancelledSearchResumesBitIdentical) {
  const PreparedData data = TinyData();
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    // Uninterrupted reference.
    SearchOptions reference_options = TinySearchOptions();
    const SearchResult reference =
        JointSearcher(reference_options).Search(data);

    // Interrupt after 3 steps via a step budget (the same final-checkpoint
    // path a SIGTERM takes), then resume to completion.
    const std::string path = TempPath("cancel_resume.bin");
    RemoveGenerations(path);
    SearchOptions interrupted = TinySearchOptions();
    interrupted.checkpoint_path = path;
    interrupted.checkpoint_every_n_batches = 2;
    interrupted.step_budget = 3;
    StatusOr<SearchResult> first =
        JointSearcher(interrupted).SearchWithStatus(data);
    ASSERT_FALSE(first.ok());
    ASSERT_TRUE(FileExists(path));

    SearchOptions resumed_options = TinySearchOptions();
    resumed_options.checkpoint_path = path;
    resumed_options.checkpoint_every_n_batches = 2;
    resumed_options.resume = true;
    const SearchResult resumed = JointSearcher(resumed_options).Search(data);

    EXPECT_EQ(resumed.genotype.ToText(), reference.genotype.ToText())
        << "threads=" << threads;
    EXPECT_EQ(resumed.final_validation_loss, reference.final_validation_loss)
        << "threads=" << threads;
    RemoveGenerations(path);
  }
  SetNumThreads(1);
}

TEST(SearchCancellation, ExternalTokenCancelsMidRun) {
  const PreparedData data = TinyData();
  CancellationToken token;
  token.Cancel(CancelReason::kShutdown);
  SearchOptions options = TinySearchOptions();
  options.cancel = &token;
  StatusOr<SearchResult> result =
      JointSearcher(options).SearchWithStatus(data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(SearchCancellation, UninterruptedRunUnchangedByWiring) {
  const PreparedData data = TinyData();
  SearchOptions plain = TinySearchOptions();
  const SearchResult without = JointSearcher(plain).Search(data);

  CancellationToken token;  // never cancelled
  SearchOptions wired = TinySearchOptions();
  wired.cancel = &token;
  wired.deadline = Deadline::AfterBudget(3600.0);
  wired.step_budget = 1'000'000;
  const SearchResult with = JointSearcher(wired).Search(data);

  EXPECT_EQ(without.genotype.ToText(), with.genotype.ToText());
  EXPECT_EQ(without.final_validation_loss, with.final_validation_loss);
}

// ---------------------------------------------------------------------------
// Eval-scheduler integration.
// ---------------------------------------------------------------------------

Genotype MakeCandidate(int64_t variant) {
  const std::vector<std::string> ops = {"identity", "gdcc", "inf_s", "dgcn",
                                        "inf_t"};
  const auto op = [&](int64_t i) {
    return ops[(variant + i) % static_cast<int64_t>(ops.size())];
  };
  Genotype genotype;
  genotype.nodes_per_block = 3;
  for (int64_t b = 0; b < 2; ++b) {
    core::BlockGenotype block;
    block.edges.push_back({0, 1, op(b)});
    block.edges.push_back({1, 2, op(b + 1)});
    block.edges.push_back({0, 2, op(b + 2)});
    genotype.blocks.push_back(block);
  }
  genotype.block_inputs = {0, 1};
  AUTOCTS_CHECK(genotype.Validate().ok());
  return genotype;
}

EvalSchedulerOptions TinyEvalOptions() {
  EvalSchedulerOptions options;
  options.workers = 2;
  options.hidden_dim = 8;
  options.verbose = false;
  options.train.epochs = 1;
  options.train.batch_size = 8;
  options.train.max_batches_per_epoch = 2;
  options.train.seed = 7;
  return options;
}

TEST(EvalCancellation, BudgetedCandidateFailsAloneBitIdentically) {
  const PreparedData data = TinyData();
  const std::vector<Genotype> candidates = {MakeCandidate(0), MakeCandidate(1),
                                            MakeCandidate(2)};
  // Reference: all three trained cleanly.
  StatusOr<core::EvalBatchResult> clean =
      EvalScheduler(TinyEvalOptions()).Evaluate(candidates, data);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean.value().failed, 0);

  // Candidate 1 gets a 1-batch step budget through the setup hook; the
  // others keep their full budget.
  EvalSchedulerOptions options = TinyEvalOptions();
  options.candidate_setup_hook = [](int64_t index,
                                    models::TrainConfig* config) {
    if (index == 1) config->step_budget = 1;
  };
  StatusOr<core::EvalBatchResult> budgeted =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_EQ(budgeted.value().failed, 1);
  EXPECT_EQ(budgeted.value().candidates[1].status.code(),
            StatusCode::kDeadlineExceeded);
  for (const int64_t i : {0, 2}) {
    EXPECT_TRUE(budgeted.value().candidates[i].status.ok());
    EXPECT_EQ(budgeted.value().candidates[i].result.average.mae,
              clean.value().candidates[i].result.average.mae)
        << "candidate " << i;
    EXPECT_EQ(budgeted.value().candidates[i].result.final_train_loss,
              clean.value().candidates[i].result.final_train_loss)
        << "candidate " << i;
  }
}

TEST(EvalCancellation, DeadlineExceededCodeSurvivesCheckpointResume) {
  const PreparedData data = TinyData();
  const std::string path = TempPath("eval_deadline_resume.bin");
  RemoveGenerations(path);
  const std::vector<Genotype> candidates = {MakeCandidate(0),
                                            MakeCandidate(1)};

  EvalSchedulerOptions options = TinyEvalOptions();
  options.checkpoint_path = path;
  options.candidate_setup_hook = [](int64_t index,
                                    models::TrainConfig* config) {
    if (index == 0) config->step_budget = 1;
  };
  StatusOr<core::EvalBatchResult> first =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().candidates[0].status.code(),
            StatusCode::kDeadlineExceeded);

  // A resume run (no setup hook this time) must surface the persisted
  // failure with its original code, not retrain candidate 0.
  EvalSchedulerOptions resume_options = TinyEvalOptions();
  resume_options.checkpoint_path = path;
  StatusOr<core::EvalBatchResult> resumed =
      EvalScheduler(resume_options).Evaluate(candidates, data);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed.value().candidates[0].resumed);
  EXPECT_EQ(resumed.value().candidates[0].status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resumed.value().candidates[1].status.ok());
  RemoveGenerations(path);
}

TEST(EvalCancellation, WallBudgetWatchdogCancelsRunawayCandidate) {
  const PreparedData data = TinyData();
  // A generous epoch count so the run would take far longer than the
  // budget; the watchdog (real clock, 5 ms scan) must cut it short.
  EvalSchedulerOptions options = TinyEvalOptions();
  options.workers = 1;
  options.train.epochs = 1000;
  options.train.max_batches_per_epoch = 4;
  options.candidate_wall_budget_seconds = 0.05;
  Stopwatch watch;
  StatusOr<core::EvalBatchResult> result =
      EvalScheduler(options).Evaluate({MakeCandidate(0)}, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().candidates[0].status.code(),
            StatusCode::kDeadlineExceeded);
  // Sanity bound: the 1000-epoch run ended in seconds, not minutes.
  EXPECT_LT(watch.Seconds(), 30.0);
}

TEST(EvalCancellation, ExternalCancelStopsSchedulingAndReturnsCancelled) {
  const PreparedData data = TinyData();
  CancellationToken token;
  token.Cancel(CancelReason::kShutdown);
  EvalSchedulerOptions options = TinyEvalOptions();
  options.cancel = &token;
  StatusOr<core::EvalBatchResult> result = EvalScheduler(options).Evaluate(
      {MakeCandidate(0), MakeCandidate(1)}, data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(EvalCancellation, MidBatchCancelPersistsFinishedCandidates) {
  const PreparedData data = TinyData();
  const std::string path = TempPath("eval_cancel_resume.bin");
  RemoveGenerations(path);
  const std::vector<Genotype> candidates = {MakeCandidate(0), MakeCandidate(1),
                                            MakeCandidate(2)};

  CancellationToken token;
  EvalSchedulerOptions options = TinyEvalOptions();
  options.workers = 1;
  options.checkpoint_path = path;
  options.cancel = &token;
  // Cancel as soon as the first candidate has been persisted.
  options.post_persist_hook = [&token](int64_t persisted) {
    if (persisted >= 1) token.Cancel(CancelReason::kShutdown);
  };
  StatusOr<core::EvalBatchResult> first =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(FileExists(path));

  // Resume completes the remaining candidates; the batch matches a clean
  // uninterrupted run bit-for-bit.
  EvalSchedulerOptions resume_options = TinyEvalOptions();
  resume_options.checkpoint_path = path;
  StatusOr<core::EvalBatchResult> resumed =
      EvalScheduler(resume_options).Evaluate(candidates, data);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_GE(resumed.value().resumed, 1);

  StatusOr<core::EvalBatchResult> clean =
      EvalScheduler(TinyEvalOptions()).Evaluate(candidates, data);
  ASSERT_TRUE(clean.ok());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(resumed.value().candidates[i].result.average.mae,
              clean.value().candidates[i].result.average.mae)
        << "candidate " << i;
  }
  RemoveGenerations(path);
}

}  // namespace
}  // namespace autocts
