// Tests for the size-bucketed tensor buffer pool (common/buffer_pool.h):
// bucket mapping, zero-fill-on-acquire, block recycling, the kill switch,
// and — the load-bearing guarantee — bit-identical search results with the
// pool on vs off at 1 and 4 threads.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "common/parallel.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using core::JointSearcher;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;

// Restores the pool's enabled state on scope exit so a failing test cannot
// leak a disabled pool into later suites.
class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool enabled)
      : previous_(BufferPool::Global().enabled()) {
    BufferPool::Global().SetEnabled(enabled);
  }
  ~ScopedPoolEnabled() { BufferPool::Global().SetEnabled(previous_); }

 private:
  bool previous_;
};

TEST(BufferPool, BucketIndexRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BufferPool::BucketIndex(0), 0);
  EXPECT_EQ(BufferPool::BucketIndex(1), 0);
  EXPECT_EQ(BufferPool::BucketIndex(64), 0);
  EXPECT_EQ(BufferPool::BucketIndex(65), 1);
  EXPECT_EQ(BufferPool::BucketIndex(128), 1);
  EXPECT_EQ(BufferPool::BucketIndex(129), 2);
  const int64_t largest = BufferPool::BucketCapacity(BufferPool::kNumBuckets - 1);
  EXPECT_EQ(BufferPool::BucketIndex(largest), BufferPool::kNumBuckets - 1);
  // Above the largest bucket the pool steps aside.
  EXPECT_EQ(BufferPool::BucketIndex(largest + 1), -1);
}

TEST(BufferPool, AcquireZeroFillsRecycledBlocks) {
  ScopedPoolEnabled enabled(true);
  constexpr int64_t kCount = 100;
  double* first_data = nullptr;
  {
    BufferRef ref = BufferPool::Global().Acquire(kCount);
    first_data = ref.data();
    // Scribble over the whole payload so a recycled block would hand the
    // garbage to the next acquirer if Acquire failed to zero-fill.
    for (int64_t i = 0; i < kCount; ++i) ref.data()[i] = 1e9 + i;
  }
  BufferRef recycled = BufferPool::Global().Acquire(kCount);
  // LIFO free list: same bucket, same size, so we get the same block back.
  EXPECT_EQ(recycled.data(), first_data);
  for (int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(recycled.data()[i], 0.0) << "recycled garbage at " << i;
  }
}

TEST(BufferPool, TensorDestructionReturnsBufferToPool) {
  ScopedPoolEnabled enabled(true);
  const BufferPoolStats before = BufferPool::Global().Stats();
  const double* storage = nullptr;
  {
    Tensor t({8, 8});
    storage = t.data();
    const BufferPoolStats held = BufferPool::Global().Stats();
    EXPECT_EQ(held.outstanding, before.outstanding + 1);
  }
  const BufferPoolStats after = BufferPool::Global().Stats();
  EXPECT_EQ(after.outstanding, before.outstanding);
  EXPECT_EQ(after.returns, before.returns + 1);
  // The freed block is first in line for the next same-bucket tensor.
  Tensor reused({8, 8});
  EXPECT_EQ(reused.data(), storage);
}

TEST(BufferPool, ViewsShareOneBlockUntilLastHandleDies) {
  ScopedPoolEnabled enabled(true);
  const BufferPoolStats before = BufferPool::Global().Stats();
  {
    Tensor t({4, 4});
    Tensor view = t.Reshape({16});
    EXPECT_EQ(view.data(), t.data());
    const BufferPoolStats held = BufferPool::Global().Stats();
    // One block outstanding, not two: the view is a reference, not a copy.
    EXPECT_EQ(held.outstanding, before.outstanding + 1);
  }
  EXPECT_EQ(BufferPool::Global().Stats().outstanding, before.outstanding);
}

TEST(BufferPool, KillSwitchBypassesRecycling) {
  ScopedPoolEnabled disabled(false);
  const BufferPoolStats before = BufferPool::Global().Stats();
  {
    Tensor t({8, 8});
    ASSERT_TRUE(t.defined());
  }
  const BufferPoolStats after = BufferPool::Global().Stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.returns, before.returns);
  EXPECT_GE(after.bypass, before.bypass + 1);
}

TEST(BufferPool, PoisonedRecycledBlocksDoNotLeakIntoResults) {
  ScopedPoolEnabled enabled(true);
  // Poison: run tensors through the pool and scribble on them so the free
  // lists are full of non-zero garbage ...
  for (int i = 0; i < 16; ++i) {
    Tensor t({16, 16});
    t.Fill(-12345.0 - i);
  }
  // ... then check a fresh computation sees none of it. Zeros(...) + AddInPlace
  // exercises the zero-filled Acquire path; Ones uses Fill over
  // uninitialized storage.
  Tensor z = Tensor::Zeros({16, 16});
  Tensor o = Tensor::Ones({16, 16});
  AddInPlace(&z, o);
  for (int64_t i = 0; i < z.size(); ++i) {
    ASSERT_EQ(z.data()[i], 1.0) << "poison leaked at " << i;
  }
}

TEST(BufferPool, ConcurrentAcquireReleaseIsSafe) {
  ScopedPoolEnabled enabled(true);
  // Handles are copied and released from several threads at once; TSan and
  // ASan runs of this suite (tools/tier1_verify.sh) make this a real race
  // and lifetime check rather than just a smoke loop.
  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        BufferRef a = BufferPool::Global().Acquire(64 + t);
        BufferRef b = a;  // refcount bump
        a.Reset();
        b.data()[0] = static_cast<double>(i);
        BufferRef c = BufferPool::Global().AcquireUninitialized(512);
        c.data()[0] = b.data()[0];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

// --- Search-level parity -------------------------------------------------

PreparedData TinyData() {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = 31;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

SearchOptions TinyOptions() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  return options;
}

SearchResult RunTinySearch(bool pool_enabled) {
  ScopedPoolEnabled scoped(pool_enabled);
  const PreparedData data = TinyData();
  return JointSearcher(TinyOptions()).Search(data);
}

// The pool's core promise: recycling changes memory addresses only, never
// values. A full supernet search must produce the same genotype and the
// exact same loss with the pool on and off.
TEST(BufferPoolParity, SearchBitIdenticalPoolOnVsOff) {
  const int64_t previous_threads = NumThreads();
  for (const int64_t threads : {int64_t{1}, int64_t{4}}) {
    SetNumThreads(threads);
    const SearchResult off = RunTinySearch(/*pool_enabled=*/false);
    const SearchResult on = RunTinySearch(/*pool_enabled=*/true);
    EXPECT_TRUE(on.genotype == off.genotype)
        << "genotype diverged at " << threads << " threads";
    EXPECT_EQ(on.final_validation_loss, off.final_validation_loss)
        << "loss diverged at " << threads << " threads";
  }
  SetNumThreads(previous_threads);
}

TEST(BufferPoolParity, SearchWarmsThePool) {
  ScopedPoolEnabled enabled(true);
  BufferPool::Global().ResetStats();
  const PreparedData data = TinyData();
  (void)JointSearcher(TinyOptions()).Search(data);
  const BufferPoolStats stats = BufferPool::Global().Stats();
  // The inner loop reuses the same temporary sizes step after step, so the
  // steady state is overwhelmingly hits.
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.hit_rate(), 0.5)
      << "hits=" << stats.hits << " misses=" << stats.misses;
}

}  // namespace
}  // namespace autocts
