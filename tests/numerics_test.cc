// Numerical-health guard layer: scan/monitor units, autograd numeric-trace
// attribution, and the fault-injection recovery harness for the trainer and
// the joint searcher (NaN and +-Inf corruption of gradients and weights at
// arbitrary batches, with and without recovery, at 1 and 4 threads).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "autograd/variable_ops.h"
#include "common/numerics.h"
#include "common/parallel.h"
#include "core/search_checkpoint.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using core::JointSearcher;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Tensor scans.
// ---------------------------------------------------------------------------

TEST(Numerics, IsFiniteValueClassifiesSpecials) {
  EXPECT_TRUE(numerics::IsFiniteValue(0.0));
  EXPECT_TRUE(numerics::IsFiniteValue(-1e300));
  EXPECT_TRUE(numerics::IsFiniteValue(5e-324));  // denormal
  EXPECT_FALSE(numerics::IsFiniteValue(kNaN));
  EXPECT_FALSE(numerics::IsFiniteValue(kInf));
  EXPECT_FALSE(numerics::IsFiniteValue(-kInf));
}

TEST(Numerics, CountNonFiniteIsExactAcrossThreadCounts) {
  Rng rng(5);
  Tensor big = Tensor::Rand({100'000}, &rng, -1.0, 1.0);
  big.data()[3] = kNaN;
  big.data()[50'000] = kInf;
  big.data()[99'999] = -kInf;
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(numerics::CountNonFinite(big), 3);
    EXPECT_FALSE(numerics::IsFinite(big));
    EXPECT_TRUE(numerics::IsFinite(Tensor::Zeros({1000})));
    EXPECT_EQ(numerics::CountNonFinite(Tensor()), 0);  // undefined tensor
  }
  SetNumThreads(1);
}

TEST(Numerics, FirstNonFiniteParameterAndGradient) {
  Variable a(Tensor::Zeros({3}), true);
  Variable b(Tensor::Zeros({3}), true);
  const std::vector<Variable> params = {a, b};
  EXPECT_EQ(numerics::FirstNonFiniteParameter(params), -1);
  EXPECT_EQ(numerics::FirstNonFiniteGradient(params), -1);

  b.AccumulateGrad(Tensor::Full({3}, kNaN));
  EXPECT_EQ(numerics::FirstNonFiniteGradient(params), 1);
  a.mutable_value().data()[0] = kInf;
  EXPECT_EQ(numerics::FirstNonFiniteParameter(params), 0);
}

// ---------------------------------------------------------------------------
// HealthMonitor.
// ---------------------------------------------------------------------------

TEST(HealthMonitor, FlagsNonFiniteLossImmediately) {
  numerics::HealthMonitor monitor{numerics::HealthConfig()};
  EXPECT_EQ(monitor.ObserveLoss(1.0), numerics::Anomaly::kNone);
  EXPECT_EQ(monitor.ObserveLoss(kNaN), numerics::Anomaly::kNonFiniteLoss);
  EXPECT_EQ(monitor.ObserveLoss(kInf), numerics::Anomaly::kNonFiniteLoss);
  EXPECT_EQ(monitor.anomalies_observed(), 2);
}

TEST(HealthMonitor, DetectsLossSpikeOnlyAfterWarmup) {
  numerics::HealthConfig config;
  config.loss_spike_factor = 10.0;
  config.min_loss_samples = 4;
  numerics::HealthMonitor monitor(config);
  // Before min_loss_samples healthy observations, no spike detection: the
  // very first loss can be huge without being an anomaly.
  EXPECT_EQ(monitor.ObserveLoss(1e9), numerics::Anomaly::kNone);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(monitor.ObserveLoss(1.0), numerics::Anomaly::kNone);
  }
  // Window mean is now ~2e8/5... feed more to settle near 1.0.
  for (int i = 0; i < 16; ++i) monitor.ObserveLoss(1.0);
  EXPECT_EQ(monitor.ObserveLoss(2.0), numerics::Anomaly::kNone);
  EXPECT_EQ(monitor.ObserveLoss(1e5), numerics::Anomaly::kLossSpike);
  // The spike itself must not poison the window.
  EXPECT_EQ(monitor.ObserveLoss(1.5), numerics::Anomaly::kNone);
  monitor.Reset();
  EXPECT_EQ(monitor.ObserveLoss(1e9), numerics::Anomaly::kNone);
}

TEST(HealthMonitor, FlagsGradientNormAnomalies) {
  numerics::HealthConfig config;
  config.max_grad_norm = 100.0;
  numerics::HealthMonitor monitor(config);
  EXPECT_EQ(monitor.ObserveGradientNorm(5.0), numerics::Anomaly::kNone);
  EXPECT_EQ(monitor.ObserveGradientNorm(kNaN),
            numerics::Anomaly::kNonFiniteGradient);
  EXPECT_EQ(monitor.ObserveGradientNorm(kInf),
            numerics::Anomaly::kNonFiniteGradient);
  EXPECT_EQ(monitor.ObserveGradientNorm(1e6),
            numerics::Anomaly::kGradientExplosion);
}

// ---------------------------------------------------------------------------
// Autograd numeric trace.
// ---------------------------------------------------------------------------

TEST(NumericTrace, NamesForwardOpProducingInf) {
  const Variable x(Tensor::Full({2}, 1000.0), true);
  BeginNumericTrace();
  const Variable y = ag::Exp(x);  // exp(1000) overflows to +Inf
  const NumericTraceReport report = EndNumericTrace();
  ASSERT_TRUE(report.triggered);
  EXPECT_EQ(report.op, "exp");
  EXPECT_FALSE(report.in_backward);
  EXPECT_NE(report.ToString().find("op 'exp'"), std::string::npos);
  (void)y;
}

TEST(NumericTrace, NamesBackwardOpProducingInf) {
  Variable x(Tensor::Zeros({2}), true);
  BeginNumericTrace();
  Variable loss = ag::SumAll(ag::Sqrt(x));  // d sqrt/dx at 0 = +Inf
  loss.Backward();
  const NumericTraceReport report = EndNumericTrace();
  ASSERT_TRUE(report.triggered);
  EXPECT_EQ(report.op, "sqrt");
  EXPECT_TRUE(report.in_backward);
}

TEST(NumericTrace, InactiveTraceReportsNothing) {
  const Variable x(Tensor::Full({2}, 1000.0), true);
  const Variable y = ag::Exp(x);
  BeginNumericTrace();
  const NumericTraceReport report = EndNumericTrace();
  EXPECT_FALSE(report.triggered);
  (void)y;
}

TEST(AttributeDivergence, NamesOpForPoisonedWeight) {
  Variable w(Tensor::Full({2}, kNaN), true);
  const std::string description = numerics::AttributeDivergence(
      [&] { return ag::SumAll(ag::Mul(w, w)); }, {{"layer.weight", w}});
  EXPECT_NE(description.find("first non-finite value produced by op 'mul'"),
            std::string::npos)
      << description;
}

TEST(AttributeDivergence, NamesParameterForLeafInjectedGradient) {
  Variable w(Tensor::Full({2}, 1.0), true);
  const std::string description = numerics::AttributeDivergence(
      [&] { return ag::SumAll(ag::Mul(w, w)); }, {{"layer.weight", w}},
      // Injected after the backward pass: no tape op produced it.
      [&] {
        Tensor grad = w.grad();
        grad.data()[0] = kNaN;
      });
  EXPECT_NE(description.find("layer.weight"), std::string::npos);
  EXPECT_NE(description.find("injected outside the autograd tape"),
            std::string::npos)
      << description;
}

// ---------------------------------------------------------------------------
// ClipGradNorm regressions: NaN > max_norm is false, so the unchecked
// version used to pass non-finite gradients through untouched — and an Inf
// norm would have scaled them all to NaN.
// ---------------------------------------------------------------------------

TEST(ClipGradNormChecked, RefusesNonFiniteNormAndLeavesGradsUntouched) {
  Variable w(Tensor::Zeros({3}), true);
  w.AccumulateGrad(Tensor::FromVector({3}, {1.0, kNaN, 2.0}));
  double norm = 0.0;
  EXPECT_FALSE(optim::ClipGradNormChecked({w}, 1.0, &norm));
  EXPECT_TRUE(std::isnan(norm));
  EXPECT_EQ(w.grad().data()[0], 1.0);  // untouched, not rescaled to NaN
  EXPECT_EQ(w.grad().data()[2], 2.0);

  Variable v(Tensor::Zeros({2}), true);
  v.AccumulateGrad(Tensor::FromVector({2}, {kInf, 1.0}));
  EXPECT_FALSE(optim::ClipGradNormChecked({v}, 1.0, &norm));
  EXPECT_TRUE(std::isinf(norm));
  // The old behaviour scaled by max_norm/Inf == 0, turning the finite
  // entry into 0 and the Inf entry into NaN.
  EXPECT_EQ(v.grad().data()[1], 1.0);
}

TEST(ClipGradNormChecked, ClipsFiniteNormsAsBefore) {
  Variable w(Tensor::Zeros({2}), true);
  w.AccumulateGrad(Tensor::FromVector({2}, {3.0, 4.0}));  // norm 5
  double norm = 0.0;
  EXPECT_TRUE(optim::ClipGradNormChecked({w}, 1.0, &norm));
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(w.grad().data()[0], 0.6, 1e-9);
  EXPECT_NEAR(w.grad().data()[1], 0.8, 1e-9);
  // The legacy entry point reports the same pre-clip norm.
  Variable v(Tensor::Zeros({2}), true);
  v.AccumulateGrad(Tensor::FromVector({2}, {3.0, 4.0}));
  EXPECT_DOUBLE_EQ(optim::ClipGradNorm({v}, 10.0), 5.0);
}

// ---------------------------------------------------------------------------
// Checkpoint health gate.
// ---------------------------------------------------------------------------

TEST(CheckpointNumericHealth, NamesFirstNonFiniteField) {
  core::SearchCheckpoint checkpoint;
  EXPECT_TRUE(core::CheckpointNumericHealth(checkpoint).ok());

  checkpoint.parameters.emplace_back("block.w", Tensor::Zeros({2}));
  checkpoint.arch_parameters.emplace_back("cell0.alpha", Tensor::Zeros({2}));
  EXPECT_TRUE(core::CheckpointNumericHealth(checkpoint).ok());

  checkpoint.parameters[0].second.data()[1] = kNaN;
  const Status bad_param = core::CheckpointNumericHealth(checkpoint);
  EXPECT_FALSE(bad_param.ok());
  EXPECT_NE(bad_param.ToString().find("block.w"), std::string::npos);
  checkpoint.parameters[0].second.data()[1] = 0.0;

  checkpoint.tau = kInf;
  EXPECT_FALSE(core::CheckpointNumericHealth(checkpoint).ok());
  checkpoint.tau = 1.0;

  checkpoint.weight_optimizer.second_moment.push_back(Tensor::Full({2}, kInf));
  const Status bad_moment = core::CheckpointNumericHealth(checkpoint);
  EXPECT_FALSE(bad_moment.ok());
  EXPECT_NE(bad_moment.ToString().find("second moment"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trainer fault injection.
// ---------------------------------------------------------------------------

PreparedData TrainerData(uint64_t seed = 31) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = seed;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

models::ForecastingModelPtr TrainerModel(const PreparedData& data) {
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = data.window.input_length;
  context.output_length = data.window.output_length;
  context.hidden_dim = 8;
  context.seed = 11;
  context.adjacency = data.adjacency;
  return models::CreateBaseline("STGCN", context);
}

models::TrainConfig TrainerConfig() {
  models::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.max_batches_per_epoch = 4;
  return config;
}

// Corrupts the first parameter gradient (value `poison`) exactly once, at
// the given (epoch, batch).
std::function<void(int64_t, int64_t, models::ForecastingModel*)>
GradPoisonOnce(int64_t at_epoch, int64_t at_batch, double poison,
               bool* fired) {
  return [=](int64_t epoch, int64_t batch, models::ForecastingModel* model) {
    if (*fired || epoch != at_epoch || batch != at_batch) return;
    for (const Variable& parameter : model->Parameters()) {
      if (!parameter.has_grad()) continue;
      Tensor grad = parameter.grad();
      grad.data()[0] = poison;
      *fired = true;
      return;
    }
  };
}

TEST(TrainerRecovery, SkipsStepPoisonedByInjectedGradient) {
  for (const double poison : {kNaN, kInf, -kInf}) {
    SCOPED_TRACE("poison=" + std::to_string(poison));
    const PreparedData data = TrainerData();
    models::ForecastingModelPtr model = TrainerModel(data);
    models::TrainConfig config = TrainerConfig();
    config.recovery.enabled = true;
    bool fired = false;
    config.fault_injection_hook = GradPoisonOnce(0, 1, poison, &fired);
    const StatusOr<models::EvalResult> result =
        models::TrainAndEvaluateWithStatus(model.get(), data, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(fired);
    EXPECT_EQ(result.value().skipped_steps, 1);
    EXPECT_EQ(result.value().recoveries, 0);
    EXPECT_NE(result.value().last_anomaly.find("non-finite gradient"),
              std::string::npos);
    EXPECT_TRUE(std::isfinite(result.value().final_train_loss));
    EXPECT_EQ(result.value().epochs_run, config.epochs);
  }
}

TEST(TrainerRecovery, RollsBackWhenWeightIsPoisoned) {
  const PreparedData data = TrainerData();
  models::ForecastingModelPtr model = TrainerModel(data);
  models::TrainConfig config = TrainerConfig();
  config.recovery.enabled = true;
  bool fired = false;
  config.fault_injection_hook = [&](int64_t epoch, int64_t batch,
                                    models::ForecastingModel* m) {
    if (fired || epoch != 1 || batch != 0) return;
    m->Parameters()[0].mutable_value().data()[0] = kNaN;
    fired = true;
  };
  const StatusOr<models::EvalResult> result =
      models::TrainAndEvaluateWithStatus(model.get(), data, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(fired);
  EXPECT_EQ(result.value().recoveries, 1);
  EXPECT_NE(result.value().last_anomaly.find("non-finite parameter"),
            std::string::npos);
  EXPECT_TRUE(std::isfinite(result.value().final_train_loss));
  // The retried epoch still counts exactly once.
  EXPECT_EQ(result.value().epochs_run, config.epochs);
  // The model that comes out the other side is clean.
  EXPECT_EQ(numerics::FirstNonFiniteParameter(model->Parameters()), -1);
}

TEST(TrainerRecovery, DisabledRecoveryReturnsStatusNotAbort) {
  const PreparedData data = TrainerData();
  models::ForecastingModelPtr model = TrainerModel(data);
  models::TrainConfig config = TrainerConfig();
  bool fired = false;
  // No fire-once guard: the attribution pass replays the fault-injection
  // hook on the re-run of the failing batch, and the corruption must
  // reappear there for the leaf scan to name it.
  config.fault_injection_hook = [&](int64_t epoch, int64_t batch,
                                    models::ForecastingModel* m) {
    if (epoch != 0 || batch != 1) return;
    for (const Variable& parameter : m->Parameters()) {
      if (!parameter.has_grad()) continue;
      Tensor grad = parameter.grad();
      grad.data()[0] = kNaN;
      fired = true;
      return;
    }
  };
  const StatusOr<models::EvalResult> result =
      models::TrainAndEvaluateWithStatus(model.get(), data, config);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(fired);
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("non-finite gradient"), std::string::npos) << message;
  // The corruption never went through an op, so attribution names the leaf.
  EXPECT_NE(message.find("injected outside the autograd tape"),
            std::string::npos)
      << message;
}

TEST(Trainer, ZeroBatchesReportsNaNTrainLossNotZero) {
  PreparedData data = TrainerData();
  // Too few steps for even one training window: EpochBatches yields nothing.
  data.splits[0] = data::WindowDataset(
      Tensor::Zeros({4, data.num_nodes, data.in_features}), data.window);
  ASSERT_EQ(data.train().NumSamples(), 0);
  models::ForecastingModelPtr model = TrainerModel(data);
  models::TrainConfig config = TrainerConfig();
  config.epochs = 1;
  const StatusOr<models::EvalResult> result =
      models::TrainAndEvaluateWithStatus(model.get(), data, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // A 0.0 here used to masquerade as a perfect fit.
  EXPECT_TRUE(std::isnan(result.value().final_train_loss));
}

TEST(Trainer, NonFiniteValidationLossCountsTowardPatience) {
  PreparedData data = TrainerData();
  // A poisoned validation split (NaN propagates through the forward pass
  // and cannot cancel against the output head's persistence highway) makes
  // every validation loss non-finite while training itself stays healthy.
  data.splits[1] = data::WindowDataset(
      Tensor::Full({20, data.num_nodes, data.in_features}, kNaN),
      data.window);
  models::ForecastingModelPtr model = TrainerModel(data);
  models::TrainConfig config = TrainerConfig();
  config.epochs = 4;
  config.early_stop_patience = 2;
  const StatusOr<models::EvalResult> result =
      models::TrainAndEvaluateWithStatus(model.get(), data, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every epoch's validation loss is non-finite: never an improvement, so
  // the run stops after `patience` epochs instead of comparing NaN.
  EXPECT_EQ(result.value().epochs_run, 2);
  EXPECT_NE(result.value().last_anomaly.find("non-finite validation loss"),
            std::string::npos);
}

TEST(TrainerRecovery, NonFiniteValidationLossExhaustsRecoveryBudget) {
  PreparedData data = TrainerData();
  data.splits[1] = data::WindowDataset(
      Tensor::Full({20, data.num_nodes, data.in_features}, kNaN),
      data.window);
  models::ForecastingModelPtr model = TrainerModel(data);
  models::TrainConfig config = TrainerConfig();
  config.epochs = 2;
  config.early_stop_patience = 1;
  config.recovery.enabled = true;
  config.recovery.max_recoveries = 1;
  const StatusOr<models::EvalResult> result =
      models::TrainAndEvaluateWithStatus(model.get(), data, config);
  // Rollback + LR backoff cannot fix poisoned validation data; the bounded
  // retry budget turns this into a structured failure, not a hang or abort.
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("recovery budget exhausted"),
            std::string::npos)
      << result.status().ToString();
}

// ---------------------------------------------------------------------------
// Searcher fault injection (the acceptance scenario): corrupt a supernet
// gradient or weight at an arbitrary batch, at 1 and 4 threads.
// ---------------------------------------------------------------------------

SearchOptions SearchOptionsForTest() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  return options;
}

TEST(SearcherRecovery, RecoversFromInjectedGradientCorruption) {
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    for (const double poison : {kNaN, kInf, -kInf}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " poison=" + std::to_string(poison));
      const PreparedData data = TrainerData();
      SearchOptions options = SearchOptionsForTest();
      options.recovery.enabled = true;
      bool fired = false;
      options.fault_injection_hook = [&](int64_t epoch, int64_t step,
                                         core::Supernet* supernet) {
        if (fired || epoch != 0 || step != 2) return;
        for (const Variable& parameter : supernet->Parameters()) {
          if (!parameter.has_grad()) continue;
          Tensor grad = parameter.grad();
          grad.data()[0] = poison;
          fired = true;
          return;
        }
      };
      const StatusOr<SearchResult> result =
          JointSearcher(options).SearchWithStatus(data);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(fired);
      EXPECT_EQ(result.value().skipped_steps, 1);
      EXPECT_NE(result.value().last_anomaly.find("non-finite gradient"),
                std::string::npos);
      EXPECT_TRUE(result.value().genotype.Validate().ok());
      EXPECT_TRUE(std::isfinite(result.value().final_validation_loss));
      EXPECT_GT(result.value().final_validation_loss, 0.0);
    }
  }
  SetNumThreads(1);
}

TEST(SearcherRecovery, RollsBackFromInjectedWeightCorruption) {
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const PreparedData data = TrainerData();
    SearchOptions options = SearchOptionsForTest();
    options.recovery.enabled = true;
    options.recovery.snapshot_every_n_batches = 2;
    bool fired = false;
    options.fault_injection_hook = [&](int64_t epoch, int64_t step,
                                       core::Supernet* supernet) {
      if (fired || epoch != 1 || step != 1) return;
      supernet->Parameters()[0].mutable_value().data()[0] = kInf;
      fired = true;
    };
    const StatusOr<SearchResult> result =
        JointSearcher(options).SearchWithStatus(data);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(fired);
    EXPECT_EQ(result.value().recoveries, 1);
    EXPECT_NE(result.value().last_anomaly.find("non-finite parameter"),
              std::string::npos);
    EXPECT_TRUE(result.value().genotype.Validate().ok());
    EXPECT_TRUE(std::isfinite(result.value().final_validation_loss));
    EXPECT_GT(result.value().final_validation_loss, 0.0);
  }
  SetNumThreads(1);
}

TEST(SearcherRecovery, DisabledRecoveryNamesOffendingOpForWeightCorruption) {
  const PreparedData data = TrainerData();
  SearchOptions options = SearchOptionsForTest();
  bool fired = false;
  options.fault_injection_hook = [&](int64_t epoch, int64_t step,
                                     core::Supernet* supernet) {
    if (fired || epoch != 0 || step != 1) return;
    supernet->Parameters()[0].mutable_value().data()[0] = kNaN;
    fired = true;
  };
  const StatusOr<SearchResult> result =
      JointSearcher(options).SearchWithStatus(data);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(fired);
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("non-finite parameter"), std::string::npos)
      << message;
  // The poisoned weight reproduces under the numeric trace: the first op
  // consuming it is named with its tape position.
  EXPECT_NE(message.find("first non-finite value produced by op '"),
            std::string::npos)
      << message;
}

TEST(SearcherRecovery, DisabledRecoveryNamesParameterForGradientCorruption) {
  const PreparedData data = TrainerData();
  SearchOptions options = SearchOptionsForTest();
  bool fired = false;
  // No fire-once guard: the attribution replay re-invokes the hook on the
  // re-run of the failing step so the leaf scan can see the corruption.
  options.fault_injection_hook = [&](int64_t epoch, int64_t step,
                                     core::Supernet* supernet) {
    if (epoch != 0 || step != 2) return;
    for (const Variable& parameter : supernet->Parameters()) {
      if (!parameter.has_grad()) continue;
      Tensor grad = parameter.grad();
      grad.data()[0] = kNaN;
      fired = true;
      return;
    }
  };
  const StatusOr<SearchResult> result =
      JointSearcher(options).SearchWithStatus(data);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(fired);
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("non-finite gradient"), std::string::npos) << message;
  EXPECT_NE(message.find("injected outside the autograd tape"),
            std::string::npos)
      << message;
}

TEST(SearcherRecovery, HealthyRunsAreUnaffectedByEnablingRecovery) {
  const PreparedData data = TrainerData();
  SearchOptions options = SearchOptionsForTest();
  options.seed = 77;
  const SearchResult plain = JointSearcher(options).Search(data);
  options.recovery.enabled = true;
  const SearchResult guarded = JointSearcher(options).Search(data);
  // Monitoring is passive: with no anomalies, recovery must not perturb the
  // trajectory at all.
  EXPECT_EQ(plain.genotype, guarded.genotype);
  EXPECT_EQ(plain.final_validation_loss, guarded.final_validation_loss);
  EXPECT_EQ(guarded.recoveries, 0);
  EXPECT_EQ(guarded.skipped_steps, 0);
  EXPECT_TRUE(guarded.last_anomaly.empty());
}

}  // namespace
}  // namespace autocts
