// Suite for the parallel top-K candidate evaluation scheduler
// (core/eval_scheduler.h):
//   * sequential-vs-parallel bit-identity at 1/2/4 workers, including under
//     an artificially reversed completion order;
//   * per-candidate fault isolation — an injected NaN divergence fails only
//     the poisoned candidate, bit-identically to a clean run elsewhere;
//   * crash-safe resume — a mid-batch kill at an exact persist boundary
//     resumes from the checkpoint, re-evaluates only the unfinished
//     candidates, and reproduces the uninterrupted batch bit-for-bit;
//   * codec round-trips and corruption rejection for the candidate-set and
//     eval-checkpoint formats;
//   * metrics determinism — the non-"wall/" CSV projection is byte-equal
//     across worker counts.
#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/metrics_registry.h"
#include "common/text_codec.h"
#include "core/eval_scheduler.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"
#include "testing/fixtures.h"

namespace autocts {
namespace {

using core::CandidateOutcome;
using core::CandidateSeed;
using core::DecodeCandidateSet;
using core::DecodeEvalCheckpoint;
using core::EncodeCandidateSet;
using core::EncodeEvalCheckpoint;
using core::EvalBatchResult;
using core::EvalCheckpoint;
using core::EvalScheduler;
using core::EvalSchedulerOptions;
using core::Genotype;
using core::LoadEvalCheckpoint;
using models::PreparedData;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Thrown from the post-persist hook to simulate a crash right after a
// checkpoint generation hit the disk (see tests/checkpoint_test.cc).
struct KillSignal {};

PreparedData TinyData(uint64_t seed = 47) {
  return fixtures::TinyPreparedData(seed);
}

Genotype MakeCandidate(int64_t variant) {
  return fixtures::MakeCandidateGenotype(variant);
}

std::vector<Genotype> MakeCandidates(int64_t count) {
  return fixtures::MakeCandidateGenotypes(count);
}

EvalSchedulerOptions TinyOptions() {
  EvalSchedulerOptions options;
  options.hidden_dim = 8;
  options.train.epochs = 1;
  options.train.batch_size = 8;
  options.train.max_batches_per_epoch = 2;
  options.train.seed = 11;
  return options;
}

std::string TempPath(const std::string& name) {
  return fixtures::TempPath("eval_scheduler_test", name);
}

void RemoveGenerations(const std::string& path) {
  fixtures::RemoveGenerations(path);
}

// Bit-exact equality of everything deterministic in an outcome (wall-clock
// fields excluded by design).
void ExpectSameOutcome(const CandidateOutcome& expected,
                       const CandidateOutcome& actual) {
  ASSERT_EQ(expected.status.ok(), actual.status.ok())
      << expected.status.ToString() << " vs " << actual.status.ToString();
  if (!expected.status.ok()) {
    EXPECT_EQ(expected.status.message(), actual.status.message());
    return;
  }
  const models::EvalResult& e = expected.result;
  const models::EvalResult& a = actual.result;
  EXPECT_EQ(e.average.mae, a.average.mae);
  EXPECT_EQ(e.average.rmse, a.average.rmse);
  EXPECT_EQ(e.average.mape, a.average.mape);
  EXPECT_EQ(e.rrse, a.rrse);
  EXPECT_EQ(e.corr, a.corr);
  EXPECT_EQ(e.final_train_loss, a.final_train_loss);
  EXPECT_EQ(e.epochs_run, a.epochs_run);
  EXPECT_EQ(e.parameter_count, a.parameter_count);
  EXPECT_EQ(e.recoveries, a.recoveries);
  EXPECT_EQ(e.skipped_steps, a.skipped_steps);
  EXPECT_EQ(e.last_anomaly, a.last_anomaly);
  ASSERT_EQ(e.per_horizon.size(), a.per_horizon.size());
  for (size_t h = 0; h < e.per_horizon.size(); ++h) {
    EXPECT_EQ(e.per_horizon[h].mae, a.per_horizon[h].mae);
    EXPECT_EQ(e.per_horizon[h].rmse, a.per_horizon[h].rmse);
    EXPECT_EQ(e.per_horizon[h].mape, a.per_horizon[h].mape);
  }
}

void ExpectSameBatch(const EvalBatchResult& expected,
                     const EvalBatchResult& actual) {
  ASSERT_EQ(expected.candidates.size(), actual.candidates.size());
  for (size_t i = 0; i < expected.candidates.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    ExpectSameOutcome(expected.candidates[i], actual.candidates[i]);
  }
  EXPECT_EQ(expected.best_index, actual.best_index);
  EXPECT_EQ(expected.failed, actual.failed);
}

// --------------------------------------------------------------------------
// RNG stream splitting.
// --------------------------------------------------------------------------

TEST(CandidateSeedTest, PureFunctionAndDistinct) {
  std::set<uint64_t> seen;
  for (int64_t i = 0; i < 64; ++i) {
    const uint64_t seed = CandidateSeed(11, i);
    EXPECT_EQ(seed, CandidateSeed(11, i));  // pure
    EXPECT_TRUE(seen.insert(seed).second) << "collision at index " << i;
  }
  // Distinct base seeds get distinct streams, and candidate 0 does not
  // replay the base seed itself.
  EXPECT_NE(CandidateSeed(11, 0), CandidateSeed(12, 0));
  EXPECT_NE(CandidateSeed(11, 0), 11u);
}

// --------------------------------------------------------------------------
// Candidate-set codec.
// --------------------------------------------------------------------------

TEST(CandidateSetCodec, RoundTripsMultipleGenotypes) {
  const std::vector<Genotype> candidates = MakeCandidates(3);
  const std::string text = EncodeCandidateSet(candidates);
  const StatusOr<std::vector<Genotype>> decoded = DecodeCandidateSet(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(decoded.value()[i], candidates[i]);
  }
  // Encoding is deterministic.
  EXPECT_EQ(text, EncodeCandidateSet(decoded.value()));
}

TEST(CandidateSetCodec, AcceptsBareGenotypeDocument) {
  const Genotype genotype = MakeCandidate(0);
  const StatusOr<std::vector<Genotype>> decoded =
      DecodeCandidateSet(genotype.ToText());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), 1u);
  EXPECT_EQ(decoded.value()[0], genotype);
}

TEST(CandidateSetCodec, RejectsCountMismatchAndBadMarkers) {
  const std::vector<Genotype> candidates = MakeCandidates(2);
  std::string text = EncodeCandidateSet(candidates);
  const size_t count_pos = text.find("count = 2");
  ASSERT_NE(count_pos, std::string::npos);
  std::string wrong_count = text;
  wrong_count[count_pos + 8] = '3';
  EXPECT_FALSE(DecodeCandidateSet(wrong_count).ok());

  // Candidate markers without the format header are not a bare genotype.
  const std::string headerless =
      "candidate = 0\n" + candidates[0].ToText();
  EXPECT_FALSE(DecodeCandidateSet(headerless).ok());
}

// --------------------------------------------------------------------------
// Eval-checkpoint codec.
// --------------------------------------------------------------------------

EvalCheckpoint SampleCheckpoint() {
  EvalCheckpoint checkpoint;
  checkpoint.config_fingerprint = "v1 sample=fingerprint lr=0x1p-10";
  checkpoint.candidate_count = 4;
  models::EvalResult first;
  first.average = {1.5, 2.25, 0.125};
  first.per_horizon = {{1.0, 2.0, 0.0625}, {0.1, 0.2, 0.3}};
  first.rrse = 0.75;
  first.corr = 0.5;
  first.final_train_loss = 0.1;
  first.train_seconds_per_epoch = 3.5;
  first.inference_ms_per_window = 0.25;
  first.parameter_count = 1234;
  first.epochs_run = 2;
  models::EvalResult second;
  second.final_train_loss = kNaN;  // no batch ever ran
  second.recoveries = 1;
  second.skipped_steps = 3;
  second.last_anomaly = "non-finite gradient in op 'gdcc'";
  checkpoint.completed = {{0, first}, {2, second}};
  checkpoint.failed = {{3, "anomaly: non-finite loss (loss=nan)"}};
  return checkpoint;
}

TEST(EvalCheckpointCodec, RoundTripsBitExactly) {
  const EvalCheckpoint checkpoint = SampleCheckpoint();
  const std::string text = EncodeEvalCheckpoint(checkpoint);
  const StatusOr<EvalCheckpoint> decoded = DecodeEvalCheckpoint(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const EvalCheckpoint& restored = decoded.value();
  EXPECT_EQ(restored.config_fingerprint, checkpoint.config_fingerprint);
  EXPECT_EQ(restored.candidate_count, checkpoint.candidate_count);
  ASSERT_EQ(restored.completed.size(), checkpoint.completed.size());
  for (size_t i = 0; i < checkpoint.completed.size(); ++i) {
    EXPECT_EQ(restored.completed[i].first, checkpoint.completed[i].first);
    CandidateOutcome a, b;
    a.result = checkpoint.completed[i].second;
    b.result = restored.completed[i].second;
    // NaN-valued train loss must survive the hex-float round trip.
    if (std::isnan(a.result.final_train_loss)) {
      EXPECT_TRUE(std::isnan(b.result.final_train_loss));
      a.result.final_train_loss = 0.0;
      b.result.final_train_loss = 0.0;
    }
    ExpectSameOutcome(a, b);
  }
  EXPECT_EQ(restored.failed, checkpoint.failed);
  // Re-encoding the decoded checkpoint is byte-identical.
  EXPECT_EQ(EncodeEvalCheckpoint(restored), text);
}

TEST(EvalCheckpointCodec, RejectsCorruptionAndTruncation) {
  const std::string text = EncodeEvalCheckpoint(SampleCheckpoint());
  // Single-byte flips, sampled across the document.
  for (size_t offset = 0; offset < text.size(); offset += 13) {
    std::string corrupt = text;
    corrupt[offset] = corrupt[offset] == 'x' ? 'y' : 'x';
    if (corrupt == text) continue;
    EXPECT_FALSE(DecodeEvalCheckpoint(corrupt).ok())
        << "flip at offset " << offset << " was accepted";
  }
  // Truncation at every line boundary.
  for (size_t pos = text.find('\n'); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    if (pos + 1 == text.size()) break;
    EXPECT_FALSE(DecodeEvalCheckpoint(text.substr(0, pos + 1)).ok())
        << "truncation at byte " << pos + 1 << " was accepted";
  }
  EXPECT_FALSE(DecodeEvalCheckpoint("").ok());
}

TEST(EvalCheckpointCodec, RejectsInconsistentRecords) {
  EvalCheckpoint checkpoint = SampleCheckpoint();
  checkpoint.failed = {{0, "also completed"}};  // overlaps completed set
  const std::string overlapping = EncodeEvalCheckpoint(checkpoint);
  EXPECT_FALSE(DecodeEvalCheckpoint(overlapping).ok());

  checkpoint = SampleCheckpoint();
  checkpoint.completed.push_back({1, models::EvalResult()});  // not ascending
  EXPECT_FALSE(
      DecodeEvalCheckpoint(EncodeEvalCheckpoint(checkpoint)).ok());
}

// --------------------------------------------------------------------------
// Scheduler: bit-identity across worker counts.
// --------------------------------------------------------------------------

TEST(EvalSchedulerTest, ParallelMatchesSequentialBitExactly) {
  const PreparedData data = TinyData();
  const std::vector<Genotype> candidates = MakeCandidates(4);

  EvalSchedulerOptions options = TinyOptions();
  options.workers = 1;
  const StatusOr<EvalBatchResult> sequential =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  EXPECT_EQ(sequential.value().evaluated, 4);
  EXPECT_EQ(sequential.value().failed, 0);
  ASSERT_GE(sequential.value().best_index, 0);

  for (const int64_t workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    options.workers = workers;
    const StatusOr<EvalBatchResult> parallel =
        EvalScheduler(options).Evaluate(candidates, data);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameBatch(sequential.value(), parallel.value());
  }
}

TEST(EvalSchedulerTest, DeterministicUnderReversedCompletionOrder) {
  const PreparedData data = TinyData();
  const std::vector<Genotype> candidates = MakeCandidates(4);

  EvalSchedulerOptions options = TinyOptions();
  options.workers = 1;
  const StatusOr<EvalBatchResult> baseline =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // With one worker per candidate, stall each completion until every
  // higher-indexed candidate has already been published: completions reach
  // the driver in exactly reversed candidate order.
  std::mutex mutex;
  std::condition_variable released;
  std::set<int64_t> completed;
  options.workers = 4;
  options.completion_hook = [&](int64_t index) {
    std::unique_lock<std::mutex> lock(mutex);
    released.wait(lock, [&] {
      for (int64_t later = index + 1; later < 4; ++later) {
        if (completed.count(later) == 0) return false;
      }
      return true;
    });
    completed.insert(index);
    released.notify_all();
  };
  const StatusOr<EvalBatchResult> reversed =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(reversed.ok()) << reversed.status().ToString();
  EXPECT_EQ(completed.size(), 4u);
  ExpectSameBatch(baseline.value(), reversed.value());
}

// --------------------------------------------------------------------------
// Scheduler: fault isolation.
// --------------------------------------------------------------------------

TEST(EvalSchedulerTest, DivergingCandidateFailsAloneAndBitIdentically) {
  const PreparedData data = TinyData();
  const std::vector<Genotype> candidates = MakeCandidates(4);

  EvalSchedulerOptions options = TinyOptions();
  options.workers = 1;
  const StatusOr<EvalBatchResult> clean =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Poison candidate 1's gradients on its first batch (recovery disabled,
  // so its training fails with an attribution). No fire-once guard: the
  // attribution pass replays the hook and the corruption must reappear.
  options.workers = 2;
  options.candidate_setup_hook = [](int64_t index,
                                    models::TrainConfig* config) {
    if (index != 1) return;
    config->fault_injection_hook = [](int64_t epoch, int64_t batch,
                                      models::ForecastingModel* model) {
      if (epoch != 0 || batch != 0) return;
      for (const Variable& parameter : model->Parameters()) {
        if (!parameter.has_grad()) continue;
        Tensor grad = parameter.grad();
        grad.data()[0] = kNaN;
        return;
      }
    };
  };
  const StatusOr<EvalBatchResult> poisoned =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(poisoned.ok()) << poisoned.status().ToString();
  const EvalBatchResult& batch = poisoned.value();
  EXPECT_EQ(batch.failed, 1);
  EXPECT_FALSE(batch.candidates[1].status.ok());
  EXPECT_NE(batch.candidates[1].status.message().find("non-finite"),
            std::string::npos)
      << batch.candidates[1].status.message();
  // Every other candidate is untouched, bit-for-bit.
  for (const int64_t i : {0, 2, 3}) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    ExpectSameOutcome(clean.value().candidates[i], batch.candidates[i]);
  }
}

// --------------------------------------------------------------------------
// Scheduler: crash-safe resume.
// --------------------------------------------------------------------------

TEST(EvalSchedulerTest, ResumesFromCheckpointWithoutReEvaluating) {
  const PreparedData data = TinyData();
  const std::vector<Genotype> candidates = MakeCandidates(4);
  const std::string path = TempPath("resume.ckpt");
  RemoveGenerations(path);

  EvalSchedulerOptions options = TinyOptions();
  options.workers = 1;
  const StatusOr<EvalBatchResult> baseline =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Kill at the exact boundary after the second candidate was persisted.
  options.checkpoint_path = path;
  options.post_persist_hook = [](int64_t persisted) {
    if (persisted >= 2) throw KillSignal{};
  };
  EXPECT_THROW(
      { (void)EvalScheduler(options).Evaluate(candidates, data); },
      KillSignal);
  const StatusOr<EvalCheckpoint> on_disk = LoadEvalCheckpoint(path);
  ASSERT_TRUE(on_disk.ok()) << on_disk.status().ToString();
  EXPECT_EQ(on_disk.value().completed.size() + on_disk.value().failed.size(),
            2u);

  // The resumed run re-evaluates only the two unfinished candidates and
  // reproduces the uninterrupted batch bit-for-bit.
  options.post_persist_hook = nullptr;
  const StatusOr<EvalBatchResult> resumed =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().resumed, 2);
  EXPECT_EQ(resumed.value().evaluated, 2);
  EXPECT_TRUE(resumed.value().candidates[0].resumed);
  EXPECT_TRUE(resumed.value().candidates[1].resumed);
  ExpectSameBatch(baseline.value(), resumed.value());

  // A third run restores everything.
  const StatusOr<EvalBatchResult> all_resumed =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(all_resumed.ok()) << all_resumed.status().ToString();
  EXPECT_EQ(all_resumed.value().resumed, 4);
  EXPECT_EQ(all_resumed.value().evaluated, 0);
  ExpectSameBatch(baseline.value(), all_resumed.value());
  RemoveGenerations(path);
}

TEST(EvalSchedulerTest, MismatchedFingerprintStartsFresh) {
  const PreparedData data = TinyData();
  const std::vector<Genotype> candidates = MakeCandidates(2);
  const std::string path = TempPath("fingerprint.ckpt");
  RemoveGenerations(path);

  EvalSchedulerOptions options = TinyOptions();
  options.workers = 2;
  options.checkpoint_path = path;
  const StatusOr<EvalBatchResult> first =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().evaluated, 2);

  // A different training seed is a different batch: the stale checkpoint
  // must be ignored, not restored into wrong results.
  options.train.seed = 12;
  const StatusOr<EvalBatchResult> reseeded =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(reseeded.ok()) << reseeded.status().ToString();
  EXPECT_EQ(reseeded.value().resumed, 0);
  EXPECT_EQ(reseeded.value().evaluated, 2);
  RemoveGenerations(path);
}

// --------------------------------------------------------------------------
// Scheduler: metrics determinism.
// --------------------------------------------------------------------------

TEST(EvalSchedulerTest, MetricsDeterministicColumnsMatchAcrossWorkers) {
  const PreparedData data = TinyData();
  const std::vector<Genotype> candidates = MakeCandidates(3);

  const auto run = [&](int64_t workers, obs::MetricsRegistry* registry) {
    EvalSchedulerOptions options = TinyOptions();
    options.workers = workers;
    options.metrics = registry;
    const StatusOr<EvalBatchResult> result =
        EvalScheduler(options).Evaluate(candidates, data);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };
  obs::MetricsRegistry sequential;
  obs::MetricsRegistry parallel;
  run(1, &sequential);
  run(3, &parallel);
  ASSERT_EQ(sequential.rows().size(), 4u);  // 3 candidates + 1 batch row
  EXPECT_EQ(obs::MetricsRegistry::StripWallColumns(sequential.ToCsv()),
            obs::MetricsRegistry::StripWallColumns(parallel.ToCsv()));
}

// --------------------------------------------------------------------------
// Search integration: DeriveTopK feeding the scheduler.
// --------------------------------------------------------------------------

TEST(EvalSchedulerTest, SearchDerivesRankedDistinctCandidates) {
  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.epochs = 1;
  options.batch_size = 8;
  options.max_batches_per_epoch = 2;
  options.derive_top_k = 3;
  const StatusOr<core::SearchResult> result =
      core::JointSearcher(options).SearchWithStatus(TinyData());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<Genotype>& top = result.value().top_genotypes;
  ASSERT_GE(top.size(), 2u);
  ASSERT_LE(top.size(), 3u);
  EXPECT_EQ(top[0], result.value().genotype);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_TRUE(top[i].Validate().ok());
    for (size_t j = i + 1; j < top.size(); ++j) {
      EXPECT_NE(top[i], top[j]) << "candidates " << i << "/" << j;
    }
  }
}

}  // namespace
}  // namespace autocts
