#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using metrics::ComputeHorizonMetrics;
using metrics::ComputeMetrics;
using metrics::Corr;
using metrics::PointMetrics;
using metrics::Rrse;

TEST(PointMetrics, HandComputedValues) {
  const Tensor pred = Tensor::FromVector({4}, {1.0, 2.0, 3.0, 4.0});
  const Tensor truth = Tensor::FromVector({4}, {2.0, 2.0, 1.0, 8.0});
  const PointMetrics m = ComputeMetrics(pred, truth, /*masked=*/false);
  EXPECT_NEAR(m.mae, (1.0 + 0.0 + 2.0 + 4.0) / 4.0, 1e-12);
  EXPECT_NEAR(m.rmse, std::sqrt((1.0 + 0.0 + 4.0 + 16.0) / 4.0), 1e-12);
  EXPECT_NEAR(m.mape, (0.5 + 0.0 + 2.0 + 0.5) / 4.0, 1e-12);
}

TEST(PointMetrics, PerfectPredictionIsZero) {
  Rng rng(1);
  const Tensor truth = Tensor::Rand({3, 5}, &rng, 1.0, 2.0);
  const PointMetrics m = ComputeMetrics(truth, truth);
  EXPECT_EQ(m.mae, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.mape, 0.0);
}

TEST(PointMetrics, MaskingExcludesNullTruthEntries) {
  // Truth 0.0 marks a failed sensor; errors there must not count.
  const Tensor pred = Tensor::FromVector({3}, {10.0, 100.0, 3.0});
  const Tensor truth = Tensor::FromVector({3}, {12.0, 0.0, 4.0});
  const PointMetrics masked = ComputeMetrics(pred, truth, /*masked=*/true);
  EXPECT_NEAR(masked.mae, (2.0 + 1.0) / 2.0, 1e-12);
  const PointMetrics unmasked = ComputeMetrics(pred, truth, /*masked=*/false);
  EXPECT_GT(unmasked.mae, 30.0);
}

TEST(PointMetrics, RmseDominatedByLargeErrors) {
  const Tensor pred = Tensor::FromVector({2}, {0.0, 0.0});
  const Tensor truth = Tensor::FromVector({2}, {1.0, 7.0});
  const PointMetrics m = ComputeMetrics(pred, truth, /*masked=*/false);
  EXPECT_GT(m.rmse, m.mae);
}

TEST(PointMetrics, ShapeMismatchDies) {
  EXPECT_DEATH(
      ComputeMetrics(Tensor::Zeros({2}), Tensor::Zeros({3})), "");
}

TEST(HorizonMetrics, SlicesTheRequestedStep) {
  // [B=1, Q=3, N=1, 1]: per-step errors 1, 2, 3.
  const Tensor pred = Tensor::FromVector({1, 3, 1, 1}, {1.0, 2.0, 3.0});
  const Tensor truth = Tensor::FromVector({1, 3, 1, 1}, {2.0, 4.0, 6.0});
  EXPECT_NEAR(ComputeHorizonMetrics(pred, truth, 0).mae, 1.0, 1e-12);
  EXPECT_NEAR(ComputeHorizonMetrics(pred, truth, 1).mae, 2.0, 1e-12);
  EXPECT_NEAR(ComputeHorizonMetrics(pred, truth, 2).mae, 3.0, 1e-12);
  // The all-horizon average sits between them.
  EXPECT_NEAR(ComputeMetrics(pred, truth).mae, 2.0, 1e-12);
}

TEST(Rrse, ZeroForPerfectOneForMeanPredictor) {
  Rng rng(2);
  const Tensor truth = Tensor::Rand({50, 2}, &rng, 0.0, 10.0);
  EXPECT_EQ(Rrse(truth, truth), 0.0);
  const Tensor mean_pred = Tensor::Full({50, 2}, MeanAll(truth));
  EXPECT_NEAR(Rrse(mean_pred, truth), 1.0, 1e-9);
}

TEST(Rrse, ScalesWithErrorMagnitude) {
  Rng rng(3);
  const Tensor truth = Tensor::Rand({40, 1}, &rng, 0.0, 1.0);
  const Tensor small = Add(truth, Tensor::Full({40, 1}, 0.01));
  const Tensor large = Add(truth, Tensor::Full({40, 1}, 0.5));
  EXPECT_LT(Rrse(small, truth), Rrse(large, truth));
}

TEST(Rrse, ConstantTruthFallsBackToRmseInsteadOfScoringPerfect) {
  // Degenerate denominator: every truth entry equals the mean. The old
  // behavior returned 0 — scoring an arbitrarily wrong prediction as
  // perfect. The fallback is plain RMSE, so errors still rank.
  const Tensor truth = Tensor::Full({6, 1}, 5.0);
  const Tensor perfect = Tensor::Full({6, 1}, 5.0);
  const Tensor wrong = Tensor::Full({6, 1}, 8.0);
  const Tensor worse = Tensor::Full({6, 1}, 15.0);
  EXPECT_EQ(Rrse(perfect, truth), 0.0);
  EXPECT_NEAR(Rrse(wrong, truth), 3.0, 1e-12);   // RMSE of a constant error
  EXPECT_NEAR(Rrse(worse, truth), 10.0, 1e-12);
  EXPECT_LT(Rrse(wrong, truth), Rrse(worse, truth));
}

TEST(Rrse, EmptyInputIsDeterministicZero) {
  const Tensor empty({0, 1});
  EXPECT_EQ(Rrse(empty, empty), 0.0);
}

TEST(Corr, DegenerateExtentsReturnZero) {
  // No samples, or a single sample (zero variance in every series): the
  // correlation is undefined; the deterministic fallback is 0, not NaN.
  const Tensor empty({0, 2});
  EXPECT_EQ(Corr(empty, empty), 0.0);
  const Tensor single = Tensor::Full({1, 3}, 4.0);
  EXPECT_EQ(Corr(single, single), 0.0);
}

TEST(Corr, AllConstantSeriesReturnZeroNotNan) {
  const Tensor pred = Tensor::Full({8, 2}, 1.0);
  const Tensor truth = Tensor::Full({8, 2}, 2.0);
  const double c = Corr(pred, truth);
  EXPECT_EQ(c, 0.0);
  EXPECT_FALSE(std::isnan(c));
}

TEST(Corr, PerfectAndAntiCorrelation) {
  Tensor truth({10, 1});
  Tensor flipped({10, 1});
  for (int64_t t = 0; t < 10; ++t) {
    truth.At({t, 0}) = static_cast<double>(t);
    flipped.At({t, 0}) = -static_cast<double>(t);
  }
  EXPECT_NEAR(Corr(truth, truth), 1.0, 1e-12);
  EXPECT_NEAR(Corr(flipped, truth), -1.0, 1e-12);
  // Affine transformations preserve correlation.
  const Tensor scaled = AddScalar(MulScalar(truth, 3.0), 7.0);
  EXPECT_NEAR(Corr(scaled, truth), 1.0, 1e-12);
}

TEST(Corr, IsBoundedForRandomSeries) {
  Rng rng(4);
  const Tensor a = Tensor::Randn({100, 5}, &rng);
  const Tensor b = Tensor::Randn({100, 5}, &rng);
  const double c = Corr(a, b);
  EXPECT_GE(c, -1.0);
  EXPECT_LE(c, 1.0);
  EXPECT_NEAR(c, 0.0, 0.3);  // Independent noise: near zero.
}

TEST(Corr, ConstantSeriesAreSkipped) {
  // A constant column has zero variance; it must not poison the average.
  Tensor truth({10, 2});
  Tensor pred({10, 2});
  for (int64_t t = 0; t < 10; ++t) {
    truth.At({t, 0}) = static_cast<double>(t);
    pred.At({t, 0}) = static_cast<double>(t);
    truth.At({t, 1}) = 5.0;
    pred.At({t, 1}) = 5.0;
  }
  EXPECT_NEAR(Corr(pred, truth), 1.0, 1e-12);
}

TEST(Metrics, BetterForecastsScoreBetterOnEveryMetric) {
  // An end-to-end sanity property: adding more noise hurts all metrics.
  Rng rng(5);
  const Tensor truth = Tensor::Rand({200, 3}, &rng, 20.0, 80.0);
  Rng noise_rng(6);
  Tensor mild = truth.Clone();
  Tensor severe = truth.Clone();
  for (int64_t i = 0; i < truth.size(); ++i) {
    const double n = noise_rng.Normal();
    mild.data()[i] += n * 1.0;
    severe.data()[i] += n * 10.0;
  }
  const PointMetrics m_mild = ComputeMetrics(mild, truth);
  const PointMetrics m_severe = ComputeMetrics(severe, truth);
  EXPECT_LT(m_mild.mae, m_severe.mae);
  EXPECT_LT(m_mild.rmse, m_severe.rmse);
  EXPECT_LT(m_mild.mape, m_severe.mape);
  EXPECT_LT(Rrse(mild, truth), Rrse(severe, truth));
  EXPECT_GT(Corr(mild, truth), Corr(severe, truth));
}

}  // namespace
}  // namespace autocts
