// End-to-end pipeline suite: drives the real autocts_cli binary (path baked
// in via AUTOCTS_CLI_PATH) over a tiny synthetic dataset through
//
//   search --derive-top-k  ->  kill  ->  search --resume
//     ->  evaluate-topk  ->  kill  ->  evaluate-topk (checkpoint resume)
//
// and asserts the interrupted pipeline reproduces the straight-through
// run's candidate set and per-candidate metrics bit-for-bit (the CLI prints
// exact hex-float images for this purpose), at 1 and 2 eval workers.
//
// Everything here crosses a process boundary on purpose: the in-process
// suites (checkpoint_test, eval_scheduler_test) already cover the library
// seams; this one proves the shipped binary wires them together.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#endif

#include "common/file_io.h"
#include "testing/fixtures.h"

namespace autocts {
namespace {

#ifndef AUTOCTS_CLI_PATH
#error "AUTOCTS_CLI_PATH must be defined by the build"
#endif

struct CliRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

std::string TempPath(const std::string& name) {
  return fixtures::TempPath("pipeline_e2e", name);
}

CliRun RunCli(const std::string& args, const std::string& tag) {
  const std::string log = TempPath("log_" + tag + ".txt");
  const std::string command =
      std::string(AUTOCTS_CLI_PATH) + " " + args + " > " + log + " 2>&1";
  const int raw = std::system(command.c_str());
  CliRun run;
#ifdef WIFEXITED
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
#else
  run.exit_code = raw;
#endif
  std::ifstream stream(log);
  std::stringstream buffer;
  buffer << stream.rdbuf();
  run.output = buffer.str();
  return run;
}

// The deterministic comparison material: every "exact ..." token the
// evaluate-topk subcommand prints, plus the best-candidate line, with the
// "(resumed)" annotations stripped (resume changes provenance, not values).
std::string ExactTokens(const std::string& output) {
  std::istringstream stream(output);
  std::string line;
  std::string tokens;
  while (std::getline(stream, line)) {
    const size_t resumed = line.find(" (resumed)");
    if (resumed != std::string::npos) line.erase(resumed, 10);
    if (line.rfind("candidate ", 0) == 0 ||
        line.rfind("best candidate ", 0) == 0) {
      tokens += line;
      tokens += '\n';
    }
  }
  return tokens;
}

std::string ReadFileOrDie(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  AUTOCTS_CHECK(text.ok()) << path << ": " << text.status().ToString();
  return text.value();
}

// Tiny but real: 5 nodes, 320 steps, 4 derived candidates.
const char kDataFlags[] =
    "--kind traffic-speed --nodes 5 --steps 320 --seed 9 "
    "--input 6 --output 3";
const char kSearchFlags[] =
    "--micro-nodes 3 --macro-blocks 2 --hidden 8 --epochs 2 --batch 8 "
    "--max-batches 3 --search-seed 5 --derive-top-k 4";
const char kEvalFlags[] =
    "--hidden 8 --epochs 1 --batch 8 --max-batches 2 --train-seed 11 "
    "--quiet 1";

TEST(PipelineE2E, KilledAndResumedPipelineIsBitIdentical) {
  const std::string straight_cands = TempPath("straight_cands.txt");
  const std::string killed_cands = TempPath("killed_cands.txt");
  const std::string search_ckpt = TempPath("search.ckpt");
  const std::string eval_ckpt = TempPath("eval.ckpt");
  for (const std::string& path :
       {straight_cands, killed_cands, search_ckpt, eval_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
  const std::string data_and_search =
      std::string(kDataFlags) + " " + kSearchFlags;

  // ---- Straight-through reference: search, then evaluate-topk. ----
  CliRun search = RunCli(
      "search " + data_and_search + " --out " + straight_cands,
      "search_straight");
  ASSERT_EQ(search.exit_code, 0) << search.output;
  ASSERT_NE(search.output.find("candidate set (4 genotypes)"),
            std::string::npos)
      << search.output;

  CliRun eval = RunCli("evaluate-topk " + std::string(kDataFlags) + " " +
                           kEvalFlags + " --candidates " + straight_cands +
                           " --eval-workers 1",
                       "eval_straight");
  ASSERT_EQ(eval.exit_code, 0) << eval.output;
  const std::string reference = ExactTokens(eval.output);
  ASSERT_NE(reference.find("candidate 3"), std::string::npos) << eval.output;
  ASSERT_NE(reference.find("best candidate"), std::string::npos);

  // ---- Interrupted search: die after the first checkpoint, resume. ----
  CliRun killed = RunCli("search " + data_and_search + " --out " +
                             killed_cands +
                             " --checkpoint " + search_ckpt +
                             " --checkpoint-every 2 --die-after-checkpoints 1",
                         "search_killed");
  ASSERT_EQ(killed.exit_code, 42) << killed.output;
  ASSERT_TRUE(FileExists(search_ckpt));

  CliRun resumed = RunCli("search " + data_and_search + " --out " +
                              killed_cands +
                              " --checkpoint " + search_ckpt +
                              " --checkpoint-every 2 --resume 1",
                          "search_resumed");
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  // The resumed search derives the exact same candidate set.
  EXPECT_EQ(ReadFileOrDie(killed_cands), ReadFileOrDie(straight_cands));

  // ---- Interrupted evaluation: die after 2 persisted candidates. ----
  const std::string eval_args = "evaluate-topk " + std::string(kDataFlags) +
                                " " + kEvalFlags +
                                " --candidates " + killed_cands +
                                " --eval-checkpoint " + eval_ckpt;
  CliRun eval_killed = RunCli(
      eval_args + " --eval-workers 1 --die-after-candidates 2",
      "eval_killed");
  ASSERT_EQ(eval_killed.exit_code, 42) << eval_killed.output;
  ASSERT_TRUE(FileExists(eval_ckpt));

  CliRun eval_resumed =
      RunCli(eval_args + " --eval-workers 2", "eval_resumed");
  ASSERT_EQ(eval_resumed.exit_code, 0) << eval_resumed.output;
  // Only the unfinished candidates were re-evaluated...
  EXPECT_NE(eval_resumed.output.find("(resumed)"), std::string::npos)
      << eval_resumed.output;
  EXPECT_NE(eval_resumed.output.find("resumed 2"), std::string::npos)
      << eval_resumed.output;
  // ...and every exact metric token matches the straight-through run.
  EXPECT_EQ(ExactTokens(eval_resumed.output), reference);

  // ---- Worker-count independence through the real binary. ----
  CliRun eval_parallel = RunCli("evaluate-topk " +
                                    std::string(kDataFlags) + " " +
                                    kEvalFlags +
                                    " --candidates " + straight_cands +
                                    " --eval-workers 2",
                                "eval_parallel");
  ASSERT_EQ(eval_parallel.exit_code, 0) << eval_parallel.output;
  EXPECT_EQ(ExactTokens(eval_parallel.output), reference);

  for (const std::string& path :
       {straight_cands, killed_cands, search_ckpt, eval_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
}

// Graceful signal-driven shutdown through the real binary: a SIGTERM
// delivered mid-run (via the --signal-after-* seams, which std::raise a
// real signal through the installed handler) must write a final
// checkpoint, exit with the documented code 143, and leave state a
// --resume run completes bit-identically to a never-interrupted run —
// at 1 and 4 eval workers.
TEST(PipelineE2E, SignalDrivenShutdownResumesBitIdentical) {
  const std::string straight_cands = TempPath("sig_straight_cands.txt");
  const std::string sig_cands = TempPath("sig_cands.txt");
  const std::string search_ckpt = TempPath("sig_search.ckpt");
  const std::string eval_ckpt = TempPath("sig_eval.ckpt");
  for (const std::string& path :
       {straight_cands, sig_cands, search_ckpt, eval_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
  const std::string data_and_search =
      std::string(kDataFlags) + " " + kSearchFlags;

  // Straight-through reference.
  CliRun search = RunCli(
      "search " + data_and_search + " --out " + straight_cands,
      "sig_search_straight");
  ASSERT_EQ(search.exit_code, 0) << search.output;
  CliRun eval = RunCli("evaluate-topk " + std::string(kDataFlags) + " " +
                           kEvalFlags + " --candidates " + straight_cands +
                           " --eval-workers 1",
                       "sig_eval_straight");
  ASSERT_EQ(eval.exit_code, 0) << eval.output;
  const std::string reference = ExactTokens(eval.output);

  // ---- Search terminated by SIGTERM after the first checkpoint. ----
  CliRun interrupted = RunCli(
      "search " + data_and_search + " --out " + sig_cands + " --checkpoint " +
          search_ckpt +
          " --checkpoint-every 2 --signal-after-checkpoints 1",
      "sig_search_term");
  ASSERT_EQ(interrupted.exit_code, 143) << interrupted.output;
  ASSERT_TRUE(FileExists(search_ckpt));
  ASSERT_NE(interrupted.output.find("final checkpoint written"),
            std::string::npos)
      << interrupted.output;

  CliRun resumed = RunCli("search " + data_and_search + " --out " +
                              sig_cands + " --checkpoint " + search_ckpt +
                              " --checkpoint-every 2 --resume 1",
                          "sig_search_resumed");
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_EQ(ReadFileOrDie(sig_cands), ReadFileOrDie(straight_cands));

  // ---- Evaluation terminated by SIGTERM after 1 persisted candidate,
  // resumed at 1 and 4 workers. ----
  for (const char* workers : {"1", "4"}) {
    std::remove(eval_ckpt.c_str());
    std::remove((eval_ckpt + ".prev").c_str());
    const std::string eval_args =
        "evaluate-topk " + std::string(kDataFlags) + " " + kEvalFlags +
        " --candidates " + sig_cands + " --eval-checkpoint " + eval_ckpt;
    CliRun eval_term = RunCli(
        eval_args + " --eval-workers 1 --signal-after-candidates 1",
        std::string("sig_eval_term_w") + workers);
    ASSERT_EQ(eval_term.exit_code, 143) << eval_term.output;
    ASSERT_TRUE(FileExists(eval_ckpt));

    CliRun eval_resumed =
        RunCli(eval_args + " --eval-workers " + workers,
               std::string("sig_eval_resumed_w") + workers);
    ASSERT_EQ(eval_resumed.exit_code, 0) << eval_resumed.output;
    EXPECT_NE(eval_resumed.output.find("(resumed)"), std::string::npos)
        << eval_resumed.output;
    EXPECT_EQ(ExactTokens(eval_resumed.output), reference)
        << "workers=" << workers;
  }

  for (const std::string& path :
       {straight_cands, sig_cands, search_ckpt, eval_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
}

// The deadline/step-budget exit path: documented code 75, final checkpoint
// on disk, and a --resume run that completes with the reference result.
TEST(PipelineE2E, StepBudgetExitsCode75AndResumes) {
  const std::string straight_cands = TempPath("budget_straight.txt");
  const std::string budget_cands = TempPath("budget_cands.txt");
  const std::string search_ckpt = TempPath("budget_search.ckpt");
  for (const std::string& path : {straight_cands, budget_cands, search_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
  const std::string data_and_search =
      std::string(kDataFlags) + " " + kSearchFlags;

  CliRun search = RunCli(
      "search " + data_and_search + " --out " + straight_cands,
      "budget_straight");
  ASSERT_EQ(search.exit_code, 0) << search.output;

  CliRun budgeted = RunCli("search " + data_and_search + " --out " +
                               budget_cands + " --checkpoint " + search_ckpt +
                               " --checkpoint-every 2 --step-budget 3",
                           "budget_interrupted");
  ASSERT_EQ(budgeted.exit_code, 75) << budgeted.output;
  ASSERT_TRUE(FileExists(search_ckpt));

  CliRun resumed = RunCli("search " + data_and_search + " --out " +
                              budget_cands + " --checkpoint " + search_ckpt +
                              " --checkpoint-every 2 --resume 1",
                          "budget_resumed");
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_EQ(ReadFileOrDie(budget_cands), ReadFileOrDie(straight_cands));

  for (const std::string& path : {straight_cands, budget_cands, search_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
}

// A fault plan injected through the real binary: the checkpoint write hit
// by ENOSPC is retried and the run finishes as if nothing happened.
TEST(PipelineE2E, InjectedFaultIsRetriedThroughCli) {
  const std::string cands = TempPath("fault_cands.txt");
  const std::string reference = TempPath("fault_reference.txt");
  const std::string search_ckpt = TempPath("fault_search.ckpt");
  for (const std::string& path : {cands, reference, search_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
  const std::string data_and_search =
      std::string(kDataFlags) + " " + kSearchFlags;

  CliRun clean = RunCli("search " + data_and_search + " --out " + reference,
                        "fault_clean");
  ASSERT_EQ(clean.exit_code, 0) << clean.output;

  CliRun faulted = RunCli("search " + data_and_search + " --out " + cands +
                              " --checkpoint " + search_ckpt +
                              " --checkpoint-every 2 --faults "
                              "write:ENOSPC@1x2",
                          "fault_injected");
  ASSERT_EQ(faulted.exit_code, 0) << faulted.output;
  ASSERT_TRUE(FileExists(search_ckpt));
  EXPECT_EQ(ReadFileOrDie(cands), ReadFileOrDie(reference));

  // A malformed plan is a usage error, reported before any work happens.
  CliRun bad = RunCli("search " + data_and_search + " --out " + cands +
                          " --faults write:NOPE@1",
                      "fault_bad");
  EXPECT_EQ(bad.exit_code, 2) << bad.output;

  for (const std::string& path : {cands, reference, search_ckpt}) {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
  }
}

TEST(PipelineE2E, EvaluateTopkAcceptsBareGenotypeFile) {
  const std::string genotype_path = TempPath("single_genotype.txt");
  std::remove(genotype_path.c_str());
  // derive-top-k 1 writes the plain single-genotype format.
  CliRun search = RunCli(
      "search " + std::string(kDataFlags) +
          " --micro-nodes 3 --macro-blocks 2 --hidden 8 --epochs 1 "
          "--batch 8 --max-batches 2 --search-seed 5 --derive-top-k 1 "
          "--out " + genotype_path,
      "search_single");
  ASSERT_EQ(search.exit_code, 0) << search.output;
  ASSERT_NE(search.output.find("genotype written"), std::string::npos);

  CliRun eval = RunCli("evaluate-topk " + std::string(kDataFlags) + " " +
                           kEvalFlags + " --candidates " + genotype_path,
                       "eval_single");
  ASSERT_EQ(eval.exit_code, 0) << eval.output;
  EXPECT_NE(eval.output.find("candidate 0"), std::string::npos)
      << eval.output;
  EXPECT_NE(eval.output.find("best candidate 0"), std::string::npos)
      << eval.output;
  std::remove(genotype_path.c_str());
}

}  // namespace
}  // namespace autocts
