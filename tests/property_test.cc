// Randomized property tests across module boundaries: random expression
// graphs through the autograd engine, random genotypes through the model
// builder, random operator pipelines, and random data round-trips.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "common/constants.h"
#include "common/parallel.h"
#include "core/derived_model.h"
#include "core/operator_set.h"
#include "data/scaler.h"
#include "data/window_dataset.h"
#include "graph/adjacency.h"
#include "nn/batch_norm.h"
#include "nn/layer_norm.h"
#include "nn/state_dict.h"
#include "ops/op_registry.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

// ---------------------------------------------------------------------------
// Random autograd expression trees: build a random differentiable scalar
// from two leaf tensors and check its gradients by finite differences.
// ---------------------------------------------------------------------------

Variable RandomExpression(const std::vector<Variable>& leaves, Rng* rng,
                          int depth) {
  if (depth == 0) {
    return leaves[rng->UniformInt(leaves.size())];
  }
  const Variable a = RandomExpression(leaves, rng, depth - 1);
  switch (rng->UniformInt(8)) {
    case 0:
      return ag::Add(a, RandomExpression(leaves, rng, depth - 1));
    case 1:
      return ag::Sub(a, RandomExpression(leaves, rng, depth - 1));
    case 2:
      return ag::Mul(a, RandomExpression(leaves, rng, depth - 1));
    case 3:
      return ag::Tanh(a);
    case 4:
      return ag::Sigmoid(a);
    case 5:
      return ag::MulScalar(a, rng->Uniform(-2.0, 2.0));
    case 6:
      return ag::Softmax(a, rng->UniformInt(a.ndim()));
    default:
      return ag::AddScalar(a, rng->Uniform(-1.0, 1.0));
  }
}

class RandomExpressionTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomExpressionTest, GradientsMatchFiniteDifferences) {
  Rng rng(1000 + GetParam());
  const Tensor leaf_a = Tensor::Rand({2, 3}, &rng, -1.0, 1.0);
  const Tensor leaf_b = Tensor::Rand({2, 3}, &rng, -1.0, 1.0);
  // Use a forked deterministic stream so the expression is identical for
  // every evaluation inside the grad check.
  const uint64_t expression_seed = rng.Next();
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& v) {
        Rng expression_rng(expression_seed);
        return ag::MeanAll(RandomExpression(v, &expression_rng, 4));
      },
      {leaf_a, leaf_b}, 1e-6, 1e-4);
  EXPECT_TRUE(result.ok) << result.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpressionTest,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Random operator pipelines preserve the [B, T, N, D] contract and stay
// finite under composition.
// ---------------------------------------------------------------------------

class RandomPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelineTest, ComposedOperatorsStayShapeSafeAndFinite) {
  Rng rng(2000 + GetParam());
  ops::OpContext context;
  context.channels = 6;
  context.num_nodes = 5;
  context.rng = &rng;
  Rng graph_rng(7);
  context.adjacency = graph::DistanceGaussianAdjacency(
      graph::RandomPositions(5, &graph_rng), 0.5, 0.1);

  const std::vector<std::string> pool = core::FullOperatorSet().op_names;
  std::vector<ops::StOperatorPtr> pipeline;
  const int64_t length = 2 + rng.UniformInt(3);
  for (int64_t i = 0; i < length; ++i) {
    pipeline.push_back(
        ops::CreateOp(pool[rng.UniformInt(pool.size())], context));
  }
  Variable h(Tensor::Rand({2, 6, 5, 6}, &rng, -1.0, 1.0), false);
  const Shape original = h.shape();
  for (auto& op : pipeline) {
    op->SetTraining(false);
    h = op->Forward(h);
    ASSERT_EQ(h.shape(), original);
  }
  for (int64_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(std::isfinite(h.value().data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Random genotypes build, run, serialize, and rebuild consistently.
// ---------------------------------------------------------------------------

core::Genotype RandomGenotype(Rng* rng) {
  const std::vector<std::string> ops = core::CompactOperatorSet().op_names;
  core::Genotype genotype;
  genotype.nodes_per_block = 3 + rng->UniformInt(3);  // 3..5
  const int64_t blocks = 1 + rng->UniformInt(3);      // 1..3
  for (int64_t b = 0; b < blocks; ++b) {
    core::BlockGenotype block;
    for (int64_t j = 1; j < genotype.nodes_per_block; ++j) {
      // Always the predecessor edge with a non-zero op.
      block.edges.push_back(
          {j - 1, j, ops[1 + rng->UniformInt(ops.size() - 1)]});
      if (j >= 2 && rng->Bernoulli(0.8)) {
        block.edges.push_back({rng->UniformInt(j - 1), j,
                               ops[1 + rng->UniformInt(ops.size() - 1)]});
      }
    }
    genotype.blocks.push_back(block);
    genotype.block_inputs.push_back(rng->UniformInt(b + 1));
  }
  return genotype;
}

class RandomGenotypeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGenotypeTest, BuildsRunsAndRoundTrips) {
  Rng rng(3000 + GetParam());
  const core::Genotype genotype = RandomGenotype(&rng);
  ASSERT_TRUE(genotype.Validate().ok());

  models::ModelContext context;
  context.num_nodes = 4;
  context.in_features = 2;
  context.input_length = 6;
  context.output_length = 3;
  context.hidden_dim = 8;
  context.seed = 17;
  Rng graph_rng(9);
  context.adjacency = graph::DistanceGaussianAdjacency(
      graph::RandomPositions(4, &graph_rng), 0.5, 0.1);

  core::DerivedModel model(genotype, context);
  model.SetTraining(false);
  Variable x(Tensor::Rand({2, 6, 4, 2}, &rng, -1.0, 1.0), false);
  const Tensor out = model.Forward(x).value();
  ASSERT_EQ(out.shape(), (Shape{2, 3, 4, 1}));

  // Serialize the genotype AND the weights; a rebuilt model reproduces the
  // outputs bit-for-bit.
  const StatusOr<core::Genotype> reloaded =
      core::Genotype::FromText(genotype.ToText());
  ASSERT_TRUE(reloaded.ok());
  core::DerivedModel rebuilt(reloaded.value(), context);
  rebuilt.SetTraining(false);
  ASSERT_TRUE(nn::LoadStateDict(&rebuilt, nn::SaveStateDict(model)).ok());
  EXPECT_TRUE(rebuilt.Forward(x).value().AllClose(out, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGenotypeTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Data-layer round trips under random configurations.
// ---------------------------------------------------------------------------

class RandomDataTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDataTest, ScalerRoundTripAndWindowCoverage) {
  Rng rng(4000 + GetParam());
  const int64_t steps = 40 + rng.UniformInt(60);
  const int64_t nodes = 1 + rng.UniformInt(6);
  const int64_t features = 1 + rng.UniformInt(3);
  Tensor values = Tensor::Rand({steps, nodes, features}, &rng, -50.0, 50.0);

  data::StandardScaler scaler;
  scaler.Fit(values);
  EXPECT_TRUE(scaler
                  .InverseTransformFeature(
                      Slice(scaler.Transform(values), 2, 0, 1), 0)
                  .AllClose(Slice(values, 2, 0, 1), 1e-8));

  data::WindowSpec spec;
  spec.input_length = 1 + rng.UniformInt(8);
  spec.output_length = 1 + rng.UniformInt(8);
  data::WindowDataset windows(values, spec);
  const int64_t expected =
      steps - spec.input_length - spec.output_length + 1;
  EXPECT_EQ(windows.NumSamples(), std::max<int64_t>(0, expected));
  if (windows.NumSamples() > 0) {
    Tensor x, y;
    windows.GetBatch({windows.NumSamples() - 1}, &x, &y);
    // The last window's final target must be the final timestamp.
    EXPECT_EQ(y.At({0, spec.output_length - 1, nodes - 1, 0}),
              values.At({steps - 1, nodes - 1, 0}));
  }
}

TEST_P(RandomDataTest, MaskedScalerRoundTripsAndPreservesNullSentinels) {
  Rng rng(4100 + GetParam());
  const int64_t steps = 30 + rng.UniformInt(40);
  const int64_t nodes = 1 + rng.UniformInt(5);
  const int64_t features = 1 + rng.UniformInt(3);
  const double null_value = 0.0;
  // Strictly positive readings, so a zero is unambiguously a sentinel.
  Tensor values = Tensor::Rand({steps, nodes, features}, &rng, 5.0, 80.0);
  for (int64_t i = 0; i < values.size(); ++i) {
    if (rng.Bernoulli(0.2)) values.data()[i] = null_value;
  }

  data::StandardScaler scaler;
  scaler.Fit(values, /*mask_null=*/true, null_value);
  const Tensor transformed = scaler.Transform(values);
  for (int64_t i = 0; i < values.size(); ++i) {
    if (values.data()[i] == null_value) {
      // Failed-sensor markers ride through the transform bit-exactly.
      ASSERT_EQ(transformed.data()[i], null_value) << "sentinel scaled at " << i;
    }
  }

  const Tensor raw0 = Slice(values, 2, 0, 1);
  const Tensor back =
      scaler.InverseTransformFeature(Slice(transformed, 2, 0, 1), 0);
  const Tensor scaled0 = Slice(transformed, 2, 0, 1);
  ASSERT_TRUE(back.shape() == raw0.shape());
  for (int64_t i = 0; i < back.size(); ++i) {
    if (raw0.data()[i] == null_value) {
      ASSERT_EQ(back.data()[i], null_value) << "sentinel rescaled at " << i;
      continue;
    }
    // A real value whose z-score happens to land within the null-match
    // tolerance of the sentinel is genuinely ambiguous for the inverse;
    // skip those rare collisions instead of asserting either outcome.
    if (std::abs(scaled0.data()[i] - null_value) < 10 * kNullMatchTolerance) {
      continue;
    }
    ASSERT_NEAR(back.data()[i], raw0.data()[i], 1e-8)
        << "round trip broke at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDataTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Tensor algebra identities on random inputs.
// ---------------------------------------------------------------------------

class TensorAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(TensorAlgebraTest, MatMulIsAssociativeAndDistributive) {
  Rng rng(5000 + GetParam());
  const int64_t m = 2 + rng.UniformInt(4);
  const int64_t k = 2 + rng.UniformInt(4);
  const int64_t n = 2 + rng.UniformInt(4);
  const int64_t p = 2 + rng.UniformInt(4);
  const Tensor a = Tensor::Randn({m, k}, &rng);
  const Tensor b = Tensor::Randn({k, n}, &rng);
  const Tensor c = Tensor::Randn({n, p}, &rng);
  // (AB)C == A(BC)
  EXPECT_TRUE(MatMul(MatMul(a, b), c)
                  .AllClose(MatMul(a, MatMul(b, c)), 1e-9));
  // A(B + B') == AB + AB'
  const Tensor b2 = Tensor::Randn({k, n}, &rng);
  EXPECT_TRUE(MatMul(a, Add(b, b2))
                  .AllClose(Add(MatMul(a, b), MatMul(a, b2)), 1e-9));
  // Transpose reverses: (AB)^T == B^T A^T
  EXPECT_TRUE(MatMul(a, b).Transpose(0, 1).AllClose(
      MatMul(b.Transpose(0, 1), a.Transpose(0, 1)), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorAlgebraTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Kernel parity: the blocked parallel MatMul and the parallel reductions
// must reproduce their naive serial references bit-for-bit on random shapes
// (including broadcast batch dimensions), for serial and threaded pools.
// ---------------------------------------------------------------------------

class KernelParityTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelParityTest, BlockedMatMulMatchesNaiveOnRandomBroadcastShapes) {
  Rng rng(6000 + GetParam());
  const int64_t m = 1 + rng.UniformInt(12);
  const int64_t k = 1 + rng.UniformInt(12);
  const int64_t n = 1 + rng.UniformInt(12);
  // Random batch ranks with random size-1 axes so broadcasting kicks in.
  Shape a_shape, b_shape;
  const int64_t batch_rank = rng.UniformInt(3);  // 0..2
  for (int64_t i = 0; i < batch_rank; ++i) {
    const int64_t extent = 1 + rng.UniformInt(3);
    a_shape.push_back(rng.Bernoulli(0.3) ? 1 : extent);
    b_shape.push_back(rng.Bernoulli(0.3) ? 1 : extent);
  }
  a_shape.push_back(m);
  a_shape.push_back(k);
  b_shape.push_back(k);
  b_shape.push_back(n);
  const Tensor a = Tensor::Randn(a_shape, &rng);
  const Tensor b = Tensor::Randn(b_shape, &rng);
  const Tensor naive = MatMulNaive(a, b);
  for (const int64_t threads : {1, 4}) {
    SetNumThreads(threads);
    const Tensor blocked = MatMul(a, b);
    ASSERT_EQ(blocked.shape(), naive.shape());
    for (int64_t i = 0; i < blocked.size(); ++i) {
      ASSERT_EQ(blocked.data()[i], naive.data()[i])
          << ShapeToString(a_shape) << " x " << ShapeToString(b_shape)
          << " threads=" << threads << " element " << i;
    }
  }
  SetNumThreads(1);
}

TEST_P(KernelParityTest, ParallelReductionsMatchSerialReference) {
  Rng rng(7000 + GetParam());
  Shape shape;
  const int64_t rank = 1 + rng.UniformInt(3);  // 1..3
  for (int64_t i = 0; i < rank; ++i) shape.push_back(1 + rng.UniformInt(9));
  const Tensor a = Tensor::Randn(shape, &rng);
  const int64_t axis = rng.UniformInt(rank);

  // Serial per-element references, accumulating in ascending index order —
  // the order the parallel kernels guarantee.
  Shape reduced_shape = shape;
  reduced_shape[axis] = 1;
  Tensor sum_ref(reduced_shape);
  {
    std::vector<int64_t> index(rank, 0);
    for (int64_t flat = 0; flat < a.size(); ++flat) {
      std::vector<int64_t> reduced = index;
      reduced[axis] = 0;
      sum_ref.At(reduced) += a.At(index);
      for (int64_t d = rank - 1; d >= 0; --d) {
        if (++index[d] < shape[d]) break;
        index[d] = 0;
      }
    }
  }
  const double* pa = a.data();
  double sum_all_ref = 0.0;
  double sum_sq_ref = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    sum_all_ref += pa[i];
    sum_sq_ref += pa[i] * pa[i];
  }

  for (const int64_t threads : {1, 4}) {
    SetNumThreads(threads);
    const Tensor sum = Sum(a, axis, /*keepdim=*/true);
    ASSERT_EQ(sum.shape(), sum_ref.shape());
    for (int64_t i = 0; i < sum.size(); ++i) {
      ASSERT_EQ(sum.data()[i], sum_ref.data()[i])
          << ShapeToString(shape) << " axis=" << axis
          << " threads=" << threads;
    }
    // Whole-tensor reductions: small tensors fit one chunk, so the chunked
    // combination matches plain left-to-right accumulation exactly.
    ASSERT_EQ(SumAll(a), sum_all_ref);
    ASSERT_EQ(SumSquares(a), sum_sq_ref);
  }
  SetNumThreads(1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelParityTest, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Numerical-robustness properties: the normalizing layers must map extreme
// but finite inputs (huge logits, zero variance, denormals) to finite
// outputs, at 1 and 4 threads. These are the layers the health monitor
// relies on NOT to manufacture NaN from healthy activations.
// ---------------------------------------------------------------------------

void ExpectAllFinite(const Tensor& tensor, const char* what) {
  for (int64_t i = 0; i < tensor.size(); ++i) {
    ASSERT_TRUE(std::isfinite(tensor.data()[i]))
        << what << " element " << i << " = " << tensor.data()[i];
  }
}

// Rows exercising the failure modes: +-1e300 logits (exp overflow without
// max-subtraction), a constant row (zero variance), denormals (underflow),
// and a mixed huge/tiny row (catastrophic cancellation in the variance).
Tensor ExtremeRows() {
  return Tensor::FromVector(
      {5, 4},
      {1e300, -1e300, 1e300, -1e300,  //
       7.5, 7.5, 7.5, 7.5,            //
       5e-324, 1e-310, -5e-324, 0.0,  //
       1e300, 1.0, -1e-300, 0.0,      //
       -744.0, 0.0, 744.0, 1.0});
}

TEST(ExtremeInputStability, SoftmaxStaysFiniteAndNormalized) {
  const Tensor logits = ExtremeRows();
  for (const int64_t threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (const double temperature : {1.0, 0.1}) {
      const Variable out = ag::SoftmaxWithTemperature(
          Variable(logits, false), /*axis=*/1, temperature);
      ExpectAllFinite(out.value(), "softmax");
      for (int64_t row = 0; row < logits.dim(0); ++row) {
        double sum = 0.0;
        for (int64_t j = 0; j < logits.dim(1); ++j) {
          const double p = out.value().At({row, j});
          ASSERT_GE(p, 0.0);
          sum += p;
        }
        ASSERT_NEAR(sum, 1.0, 1e-12) << "row " << row;
      }
    }
  }
  SetNumThreads(1);
}

TEST(ExtremeInputStability, LayerNormStaysFinite) {
  nn::LayerNorm layer_norm(4);
  for (const int64_t threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Variable out = layer_norm.Forward(Variable(ExtremeRows(), false));
    ExpectAllFinite(out.value(), "layer_norm");
  }
  SetNumThreads(1);
}

TEST(ExtremeInputStability, BatchNormStaysFiniteInBothModes) {
  for (const int64_t threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    nn::BatchNorm batch_norm(4);
    batch_norm.SetTraining(true);
    const Variable trained =
        batch_norm.Forward(Variable(ExtremeRows(), false));
    ExpectAllFinite(trained.value(), "batch_norm training");
    // Eval mode normalizes with the running statistics the extreme batch
    // just updated; those must be usable too.
    batch_norm.SetTraining(false);
    const Variable evaluated =
        batch_norm.Forward(Variable(ExtremeRows(), false));
    ExpectAllFinite(evaluated.value(), "batch_norm eval");
  }
  SetNumThreads(1);
}

}  // namespace
}  // namespace autocts
