#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

TEST(TensorConstruction, ZerosHasCorrectShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0);
}

TEST(TensorConstruction, FullAndOnes) {
  EXPECT_EQ(Tensor::Full({3}, 2.5).data()[1], 2.5);
  EXPECT_EQ(Tensor::Ones({2, 2}).data()[3], 1.0);
  EXPECT_EQ(Tensor::Scalar(7.0).item(), 7.0);
}

TEST(TensorConstruction, FromVectorChecksSize) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At({1, 0}), 3.0);
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1, 2, 3}), "");
}

TEST(TensorConstruction, EyeAndArange) {
  Tensor eye = Tensor::Eye(3);
  EXPECT_EQ(eye.At({1, 1}), 1.0);
  EXPECT_EQ(eye.At({1, 2}), 0.0);
  Tensor ar = Tensor::Arange(4);
  EXPECT_EQ(ar.data()[3], 3.0);
}

TEST(TensorConstruction, RandRespectsBounds) {
  Rng rng(1);
  Tensor t = Tensor::Rand({100}, &rng, -2.0, 3.0);
  EXPECT_GE(MinAll(t), -2.0);
  EXPECT_LT(MaxAll(t), 3.0);
}

TEST(TensorSemantics, CopySharesBufferCloneDoesNot) {
  Tensor a = Tensor::Zeros({2});
  Tensor shared = a;
  Tensor cloned = a.Clone();
  a.data()[0] = 5.0;
  EXPECT_EQ(shared.data()[0], 5.0);
  EXPECT_EQ(cloned.data()[0], 0.0);
}

TEST(TensorReshape, SharesBufferAndInfersDim) {
  Tensor a = Tensor::Arange(12);
  Tensor b = a.Reshape({3, -1});
  EXPECT_EQ(b.dim(1), 4);
  b.data()[0] = 99.0;
  EXPECT_EQ(a.data()[0], 99.0);
  EXPECT_DEATH(a.Reshape({5, 2}), "");
}

TEST(TensorPermute, TransposeMatchesManual) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = a.Transpose(0, 1);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.At({0, 1}), 4.0);
  EXPECT_EQ(t.At({2, 0}), 3.0);
}

TEST(TensorPermute, ThreeAxisPermutation) {
  Rng rng(2);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor p = a.Permute({2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      for (int64_t k = 0; k < 4; ++k) {
        EXPECT_EQ(p.At({k, i, j}), a.At({i, j, k}));
      }
    }
  }
}

TEST(TensorPermute, RoundTripIsIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor round = a.Permute({1, 2, 0}).Permute({2, 0, 1});
  EXPECT_TRUE(round.AllClose(a));
}

TEST(Broadcast, ShapesFollowNumpyRules) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(BroadcastShapes({1}, {5}), (Shape{5}));
  EXPECT_DEATH(BroadcastShapes({2, 3}, {4}), "");
}

TEST(Broadcast, AddBroadcastsRows) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.At({0, 0}), 11.0);
  EXPECT_EQ(c.At({1, 2}), 36.0);
}

TEST(Broadcast, MulBroadcastsColumns) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {2, 10});
  Tensor c = Mul(a, b);
  EXPECT_EQ(c.At({0, 2}), 6.0);
  EXPECT_EQ(c.At({1, 0}), 40.0);
}

TEST(Elementwise, BasicOps) {
  Tensor a = Tensor::FromVector({4}, {1, -2, 3, -4});
  EXPECT_EQ(Neg(a).data()[1], 2.0);
  EXPECT_EQ(Abs(a).data()[3], 4.0);
  EXPECT_EQ(Relu(a).data()[1], 0.0);
  EXPECT_EQ(Relu(a).data()[2], 3.0);
  EXPECT_DOUBLE_EQ(AddScalar(a, 1.0).data()[0], 2.0);
  EXPECT_DOUBLE_EQ(MulScalar(a, -1.5).data()[0], -1.5);
  EXPECT_NEAR(Exp(Tensor::Scalar(1.0)).item(), M_E, 1e-12);
  EXPECT_NEAR(Log(Tensor::Scalar(M_E)).item(), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(Tensor::Scalar(0.0)).item(), 0.5, 1e-12);
  EXPECT_NEAR(Tanh(Tensor::Scalar(0.0)).item(), 0.0, 1e-12);
  EXPECT_NEAR(Sqrt(Tensor::Scalar(9.0)).item(), 3.0, 1e-12);
  EXPECT_NEAR(PowScalar(Tensor::Scalar(2.0), 3.0).item(), 8.0, 1e-12);
}

TEST(MatMul, TwoDimensional) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.At({0, 0}), 58.0);
  EXPECT_EQ(c.At({0, 1}), 64.0);
  EXPECT_EQ(c.At({1, 0}), 139.0);
  EXPECT_EQ(c.At({1, 1}), 154.0);
}

TEST(MatMul, BatchedWithBroadcast) {
  Rng rng(4);
  Tensor a = Tensor::Randn({2, 5, 3, 4}, &rng);
  Tensor b = Tensor::Randn({4, 6}, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 5, 3, 6}));
  // Spot-check one batch against 2-D matmul.
  Tensor a00({3, 4});
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) a00.At({i, j}) = a.At({1, 2, i, j});
  }
  Tensor expected = MatMul(a00, b);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(c.At({1, 2, i, j}), expected.At({i, j}), 1e-12);
    }
  }
}

TEST(MatMul, LeftBroadcastMatrix) {
  // [N,N] x [B,T,N,D]: the propagation pattern used by GCN operators.
  Rng rng(5);
  Tensor p = Tensor::Randn({3, 3}, &rng);
  Tensor x = Tensor::Randn({2, 4, 3, 5}, &rng);
  Tensor y = MatMul(p, x);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 3, 5}));
  double expected = 0.0;
  for (int64_t j = 0; j < 3; ++j) expected += p.At({1, j}) * x.At({0, 2, j, 4});
  EXPECT_NEAR(y.At({0, 2, 1, 4}), expected, 1e-12);
}

TEST(MatMul, InnerDimMismatchDies) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(MatMul(a, b), "");
}

class ReductionTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ReductionTest, SumMatchesManual) {
  const int64_t axis = GetParam();
  Rng rng(6);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor s = Sum(a, axis);
  Tensor s_keep = Sum(a, axis, /*keepdim=*/true);
  EXPECT_EQ(s_keep.dim(axis), 1);
  EXPECT_NEAR(SumAll(s), SumAll(a), 1e-9);
  EXPECT_NEAR(SumAll(s_keep), SumAll(a), 1e-9);
  // Check one entry by brute force.
  std::vector<int64_t> index = {1, 2, 3};
  double manual = 0.0;
  for (int64_t k = 0; k < a.dim(axis); ++k) {
    std::vector<int64_t> idx = index;
    idx[axis] = k;
    manual += a.At(idx);
  }
  std::vector<int64_t> reduced_index = index;
  reduced_index[axis] = 0;
  EXPECT_NEAR(s_keep.At(reduced_index), manual, 1e-9);
}

TEST_P(ReductionTest, MeanIsSumOverExtent) {
  const int64_t axis = GetParam();
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor mean = Mean(a, axis, true);
  Tensor sum = Sum(a, axis, true);
  EXPECT_TRUE(mean.AllClose(
      MulScalar(sum, 1.0 / static_cast<double>(a.dim(axis))), 1e-12));
}

TEST_P(ReductionTest, MaxIsUpperBound) {
  const int64_t axis = GetParam();
  Rng rng(8);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor mx = Max(a, axis, true);
  Tensor diff = Sub(BroadcastTo(mx, a.shape()), a);
  EXPECT_GE(MinAll(diff), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllAxes, ReductionTest, ::testing::Values(0, 1, 2));

TEST(Reduction, ArgMaxPicksLargest) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  Tensor am = ArgMax(a, 1);
  EXPECT_EQ(am.data()[0], 1.0);
  EXPECT_EQ(am.data()[1], 0.0);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Rng rng(9);
  Tensor a = Tensor::Randn({4, 7}, &rng, 0.0, 3.0);
  Tensor s = Softmax(a, 1);
  for (int64_t r = 0; r < 4; ++r) {
    double total = 0.0;
    for (int64_t c = 0; c < 7; ++c) {
      const double v = s.At({r, c});
      EXPECT_GT(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  EXPECT_EQ(ArgMax(a, 1).data()[2], ArgMax(s, 1).data()[2]);
}

TEST(Softmax, StableForLargeValues) {
  Tensor a = Tensor::FromVector({1, 2}, {1000.0, 1000.0});
  Tensor s = Softmax(a, 1);
  EXPECT_NEAR(s.data()[0], 0.5, 1e-12);
}

TEST(SliceConcatPad, RoundTrip) {
  Rng rng(10);
  Tensor a = Tensor::Randn({2, 6, 3}, &rng);
  Tensor left = Slice(a, 1, 0, 2);
  Tensor middle = Slice(a, 1, 2, 3);
  Tensor right = Slice(a, 1, 5, 1);
  Tensor back = Concat({left, middle, right}, 1);
  EXPECT_TRUE(back.AllClose(a));
}

TEST(SliceConcatPad, PadAddsZeros) {
  Tensor a = Tensor::Ones({2, 2});
  Tensor p = Pad(a, 0, 1, 2);
  EXPECT_EQ(p.shape(), (Shape{5, 2}));
  EXPECT_EQ(p.At({0, 0}), 0.0);
  EXPECT_EQ(p.At({1, 1}), 1.0);
  EXPECT_EQ(p.At({4, 0}), 0.0);
  EXPECT_NEAR(SumAll(p), SumAll(a), 1e-12);
}

TEST(SliceConcatPad, SliceBoundsChecked) {
  Tensor a = Tensor::Zeros({3});
  EXPECT_DEATH(Slice(a, 0, 2, 2), "");
}

TEST(BroadcastReduce, ReduceToScalarTargets) {
  // Regression: an empty (rank-0) target used to index target[i] out of
  // bounds; it must behave like the canonical scalar shape [1].
  Rng rng(20);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor to_empty = ReduceTo(a, {});
  EXPECT_EQ(to_empty.shape(), (Shape{1}));
  EXPECT_NEAR(to_empty.item(), SumAll(a), 1e-9);
  Tensor to_one = ReduceTo(a, {1});
  EXPECT_EQ(to_one.shape(), (Shape{1}));
  EXPECT_EQ(to_one.item(), to_empty.item());
}

TEST(BroadcastReduce, ReduceToRankMismatchDies) {
  // A target of higher rank than the input is not a reduction; it must
  // CHECK-fail cleanly instead of reading past the end of the target shape.
  Tensor a = Tensor::Zeros({3});
  EXPECT_DEATH(ReduceTo(a, {1, 1, 3}), "");
  Tensor b = Tensor::Zeros({2, 3});
  EXPECT_DEATH(ReduceTo(b, {4, 3}), "");
}

TEST(BroadcastReduce, BroadcastToMatchesStridedExpansion) {
  Rng rng(21);
  Tensor a = Tensor::Randn({3, 1, 4}, &rng);
  Tensor big = BroadcastTo(a, {2, 3, 5, 4});
  EXPECT_EQ(big.shape(), (Shape{2, 3, 5, 4}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        for (int64_t k = 0; k < 4; ++k) {
          EXPECT_EQ(big.At({b, i, j, k}), a.At({i, 0, k}));
        }
      }
    }
  }
  EXPECT_DEATH(BroadcastTo(Tensor::Zeros({3}), {4}), "");
}

TEST(BroadcastReduce, ReduceToIsAdjointOfBroadcastTo) {
  // <BroadcastTo(a), b> == <a, ReduceTo(b)> for random a, b.
  Rng rng(11);
  const Shape small = {3, 1, 4};
  const Shape big = {2, 3, 5, 4};
  Tensor a = Tensor::Randn(small, &rng);
  Tensor b = Tensor::Randn(big, &rng);
  const double lhs = SumAll(Mul(BroadcastTo(a, big), b));
  const double rhs = SumAll(Mul(a, ReduceTo(b, small)));
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(InPlace, AddAndScale) {
  Tensor a = Tensor::Ones({3});
  AddInPlace(&a, Tensor::Full({3}, 2.0));
  EXPECT_EQ(a.data()[0], 3.0);
  ScaleInPlace(&a, 0.5);
  EXPECT_EQ(a.data()[2], 1.5);
}

TEST(Norm, MatchesDefinition) {
  Tensor a = Tensor::FromVector({2}, {3.0, 4.0});
  EXPECT_NEAR(Norm(a), 5.0, 1e-12);
}

TEST(Norm, SumSquaresIsSquaredNormWithoutSqrtRoundTrip) {
  Tensor a = Tensor::FromVector({2}, {3.0, 4.0});
  EXPECT_EQ(SumSquares(a), 25.0);
  Rng rng(22);
  Tensor r = Tensor::Randn({37, 11}, &rng);
  EXPECT_NEAR(SumSquares(r), Norm(r) * Norm(r), 1e-9);
  double manual = 0.0;
  for (int64_t i = 0; i < r.size(); ++i) {
    manual += r.data()[i] * r.data()[i];
  }
  EXPECT_NEAR(SumSquares(r), manual, 1e-9);
}

TEST(MatMul, BlockedKernelMatchesNaiveReference) {
  Rng rng(23);
  // Sizes straddling the 4x4 register tile, including tails on every edge.
  for (const auto& [m, k, n] :
       std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {1, 1, 1}, {3, 5, 2}, {4, 4, 4}, {5, 7, 9}, {16, 33, 12}}) {
    const Tensor a = Tensor::Randn({m, k}, &rng);
    const Tensor b = Tensor::Randn({k, n}, &rng);
    const Tensor blocked = MatMul(a, b);
    const Tensor naive = MatMulNaive(a, b);
    ASSERT_EQ(blocked.shape(), naive.shape());
    for (int64_t i = 0; i < blocked.size(); ++i) {
      EXPECT_EQ(blocked.data()[i], naive.data()[i]) << "m=" << m;
    }
  }
}

TEST(TensorDeath, ScalarItemRequiresSingleElement) {
  EXPECT_DEATH(Tensor::Zeros({2}).item(), "");
}

}  // namespace
}  // namespace autocts
