// Observability suite for the span tracer (common/trace.h) and metrics
// registry (common/metrics_registry.h):
//   * stopwatch monotonicity on the single steady clock source;
//   * span nesting, self-time telescoping, ring overflow accounting, and
//     Chrome trace-event JSON well-formedness;
//   * a golden main-thread span sequence for a fixed tiny search, proving
//     the instrumentation emits a complete, deterministic event stream;
//   * registry round-trips: CSV/JSONL shape, EncodeState/DecodeState
//     bit-exactness, corruption rejection, wall-column stripping;
//   * the bit-transparency contract: a search with tracing and metrics
//     enabled produces the identical genotype and losses as one with them
//     disabled, at 1 and 4 threads, with trace coverage >= 90%.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/metrics_registry.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/search_metrics.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/trainer.h"

namespace autocts {
namespace {

using core::JointSearcher;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;
using obs::MetricsRegistry;

PreparedData TinyData(uint64_t seed = 31) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = seed;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

SearchOptions TinyOptions() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  return options;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "observability_test_" + name;
}

void RemoveSinkFiles(const std::string& base) {
  std::remove((base + ".csv").c_str());
  std::remove((base + ".jsonl").c_str());
}

// ---------------------------------------------------------------------------
// Stopwatch / clock source.

TEST(Stopwatch, SteadyNanosNeverDecreases) {
  int64_t previous = SteadyNowNanos();
  for (int i = 0; i < 10000; ++i) {
    const int64_t now = SteadyNowNanos();
    ASSERT_GE(now, previous);
    previous = now;
  }
}

TEST(Stopwatch, ElapsedIsNonNegativeAndGrows) {
  Stopwatch watch;
  EXPECT_GE(watch.Nanos(), 0);
  // Burn a little CPU; elapsed time must not shrink between reads.
  volatile double sink = 0.0;
  int64_t previous = watch.Nanos();
  for (int i = 0; i < 1000; ++i) {
    sink += static_cast<double>(i);
    const int64_t now = watch.Nanos();
    ASSERT_GE(now, previous);
    previous = now;
  }
  EXPECT_GE(watch.Seconds(), 0.0);
  watch.Reset();
  EXPECT_GE(watch.Nanos(), 0);
}

// The fake clock replaces the real-time assertions above (which can only
// check monotonicity without flaking) with exact elapsed values.
TEST(Stopwatch, FakeClockYieldsExactElapsedValues) {
  ScopedFakeClock clock(/*start_nanos=*/1'000'000);
  EXPECT_TRUE(FakeClock::Installed());
  EXPECT_EQ(SteadyNowNanos(), 1'000'000);

  Stopwatch watch;
  EXPECT_EQ(watch.Nanos(), 0);
  FakeClock::Advance(2'500'000'000);  // 2.5 s
  EXPECT_EQ(watch.Nanos(), 2'500'000'000);
  EXPECT_EQ(watch.Seconds(), 2.5);
  EXPECT_EQ(watch.Millis(), 2500.0);

  watch.Reset();
  EXPECT_EQ(watch.Nanos(), 0);
  FakeClock::Advance(750);
  EXPECT_EQ(watch.Nanos(), 750);
}

TEST(Stopwatch, FakeClockUninstallsOnScopeExit) {
  {
    ScopedFakeClock clock(0);
    ASSERT_TRUE(FakeClock::Installed());
  }
  EXPECT_FALSE(FakeClock::Installed());
  // Back on the real clock: time moves again.
  const int64_t now = SteadyNowNanos();
  EXPECT_GT(now, 0);
}

TEST(Stopwatch, FakeClockDrivesTracerTimestamps) {
  ScopedFakeClock clock(/*start_nanos=*/100);
  trace::Start();
  {
    trace::Scope span("fake/outer");
    FakeClock::Advance(40);
    {
      trace::Scope inner("fake/inner");
      FakeClock::Advance(7);
    }
  }
  trace::Stop();
  const std::vector<trace::SpanEvent> events = trace::CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_ns, 100);
  EXPECT_EQ(events[0].duration_ns, 47);
  EXPECT_EQ(events[1].start_ns, 140);
  EXPECT_EQ(events[1].duration_ns, 7);
  EXPECT_EQ(events[0].self_ns, 40);
}

// ---------------------------------------------------------------------------
// Tracer core.

// Collects all events after running `body` inside a fresh trace.
std::vector<trace::SpanEvent> TraceOf(const std::function<void()>& body) {
  trace::Start();
  body();
  trace::Stop();
  return trace::CollectEvents();
}

TEST(Trace, InactiveScopesRecordNothing) {
  trace::Start();
  trace::Stop();
  EXPECT_FALSE(trace::Active());
  { AUTOCTS_TRACE_SCOPE("ignored"); }
  EXPECT_EQ(trace::EventCount(), 0);
  EXPECT_TRUE(trace::CollectEvents().empty());
  EXPECT_TRUE(trace::AggregateOps().empty());
  EXPECT_EQ(trace::Coverage("ignored"), 0.0);
}

TEST(Trace, NestedSpansTelescope) {
  const std::vector<trace::SpanEvent> events = TraceOf([] {
    AUTOCTS_TRACE_SCOPE("root");
    {
      AUTOCTS_TRACE_SCOPE("child_a");
      { AUTOCTS_TRACE_SCOPE("grandchild"); }
    }
    { AUTOCTS_TRACE_SCOPE("child_b"); }
  });
  ASSERT_EQ(events.size(), 4u);
  // Parents precede children in the sorted stream.
  EXPECT_STREQ(events[0].name, "root");
  EXPECT_STREQ(events[1].name, "child_a");
  EXPECT_STREQ(events[2].name, "grandchild");
  EXPECT_STREQ(events[3].name, "child_b");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_EQ(events[3].depth, 1);

  // Containment: every child interval lies inside its parent's.
  for (int child : {1, 3}) {
    EXPECT_GE(events[child].start_ns, events[0].start_ns);
    EXPECT_LE(events[child].start_ns + events[child].duration_ns,
              events[0].start_ns + events[0].duration_ns);
  }

  // Telescoping self times: the root's inclusive duration equals the sum
  // of self times over the whole tree, exactly (integer nanoseconds).
  int64_t self_sum = 0;
  for (const trace::SpanEvent& event : events) self_sum += event.self_ns;
  EXPECT_EQ(self_sum, events[0].duration_ns);
  // And per-node: self = duration - direct children's durations.
  EXPECT_EQ(events[0].self_ns, events[0].duration_ns -
                                   events[1].duration_ns -
                                   events[3].duration_ns);
  EXPECT_EQ(events[1].self_ns,
            events[1].duration_ns - events[2].duration_ns);
  EXPECT_EQ(events[2].self_ns, events[2].duration_ns);
}

TEST(Trace, AggregatesAreExactAndSortedBySelfTime) {
  trace::Start();
  for (int i = 0; i < 7; ++i) { AUTOCTS_TRACE_SCOPE("op_a"); }
  for (int i = 0; i < 3; ++i) { AUTOCTS_TRACE_SCOPE("op_b"); }
  { trace::Scope backward("op_a", /*backward=*/true); }
  trace::Stop();

  std::map<std::string, int64_t> calls;
  for (const trace::OpStat& stat : trace::AggregateOps()) {
    calls[stat.name] = stat.calls;
    EXPECT_GE(stat.total_ns, stat.self_ns);
    EXPECT_GE(stat.self_ns, 0);
  }
  EXPECT_EQ(calls["op_a"], 7);
  EXPECT_EQ(calls["op_b"], 3);
  // Backward spans aggregate under a distinct ".bwd" key.
  EXPECT_EQ(calls["op_a.bwd"], 1);

  const std::vector<trace::OpStat> stats = trace::AggregateOps();
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GE(stats[i - 1].self_ns, stats[i].self_ns);
  }
}

TEST(Trace, RingOverflowDropsOldestButKeepsAggregatesExact) {
  trace::SetRingCapacity(16);
  trace::Start();
  for (int i = 0; i < 100; ++i) { AUTOCTS_TRACE_SCOPE("spin"); }
  trace::Stop();

  EXPECT_EQ(trace::EventCount(), 16);
  EXPECT_EQ(trace::DroppedEvents(), 84);
  EXPECT_EQ(trace::CollectEvents().size(), 16u);
  // Aggregates never drop.
  const std::vector<trace::OpStat> stats = trace::AggregateOps();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, 100);
  trace::SetRingCapacity(1 << 16);
}

TEST(Trace, StartClearsPreviousCollection) {
  trace::Start();
  { AUTOCTS_TRACE_SCOPE("old"); }
  trace::Stop();
  ASSERT_EQ(trace::EventCount(), 1);
  trace::Start();
  trace::Stop();
  EXPECT_EQ(trace::EventCount(), 0);
  EXPECT_TRUE(trace::AggregateOps().empty());
}

TEST(Trace, ChromeJsonIsWellFormedAndComplete) {
  trace::Start();
  {
    AUTOCTS_TRACE_SCOPE("outer \"quoted\"");
    { AUTOCTS_TRACE_SCOPE("inner"); }
  }
  trace::Stop();
  const std::string json = trace::ToChromeTracingJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  // One "X" complete event per retained span.
  size_t complete_events = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, 2u);
  // Braces and brackets balance (no truncated records).
  int braces = 0;
  int brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, WritersProduceFiles) {
  trace::Start();
  { AUTOCTS_TRACE_SCOPE("write_me"); }
  trace::Stop();
  const std::string json_path = TempPath("writer.json");
  const std::string csv_path = TempPath("writer.csv");
  ASSERT_TRUE(trace::WriteChromeTrace(json_path));
  ASSERT_TRUE(trace::WriteAggregateCsv(csv_path));
  StatusOr<std::string> csv = ReadFileToString(csv_path);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv.value().rfind("op,calls,total_ns,self_ns\n", 0), 0u);
  EXPECT_NE(csv.value().find("write_me,1,"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

// The main-thread span-name sequence for a fixed tiny search is a golden
// trace: it must be exactly reproducible run-over-run. Worker-pool spans
// ("pool/...") are scheduling-dependent and excluded by construction.
std::vector<std::string> MainThreadSpanNames(const SearchOptions& options,
                                             const PreparedData& data) {
  trace::SetRingCapacity(1 << 20);
  SearchOptions traced = options;
  // No trace_path: drive the tracer directly so the event stream stays in
  // memory for inspection.
  trace::Start();
  SearchResult result;
  {
    AUTOCTS_TRACE_SCOPE("search");
    result = JointSearcher(traced).Search(data);
  }
  trace::Stop();
  EXPECT_GT(result.final_validation_loss, 0.0);
  std::vector<std::string> names;
  for (const trace::SpanEvent& event : trace::CollectEvents()) {
    if (event.tid != 0) continue;  // worker threads are not golden
    std::string name = event.name;
    if (name.rfind("pool/", 0) == 0) continue;
    names.push_back(event.backward ? name + ".bwd" : name);
  }
  return names;
}

TEST(Trace, GoldenMainThreadSequenceIsDeterministic) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.epochs = 1;
  options.max_batches_per_epoch = 2;

  const std::vector<std::string> first = MainThreadSpanNames(options, data);
  const std::vector<std::string> second = MainThreadSpanNames(options, data);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // Structural golden properties of the stream: the fixture spans appear,
  // forward ops have matching backward spans, and the step count is right.
  std::map<std::string, int64_t> calls;
  for (const std::string& name : first) ++calls[name];
  EXPECT_EQ(calls["search/step"], 2);
  EXPECT_EQ(calls["search/derive"], 1);
  EXPECT_GE(calls["search/setup"], 1);
  EXPECT_GT(calls["matmul"], 0);
  EXPECT_GT(calls["matmul.bwd"], 0);
  EXPECT_GT(calls["adam/step"], 0);
  EXPECT_GT(calls["data/get_batch"], 0);
  EXPECT_EQ(calls["unlabeled"], 0);
  trace::SetRingCapacity(1 << 16);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, InstrumentBasics) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("steps");
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(counter->value(), 5);
  EXPECT_EQ(registry.GetCounter("steps"), counter);

  obs::Gauge* gauge = registry.GetGauge("loss");
  gauge->Set(0.25);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.25);

  obs::Histogram* histogram = registry.GetHistogram("norm", {1.0, 10.0});
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(50.0);
  EXPECT_EQ(histogram->count(), 3);
  EXPECT_DOUBLE_EQ(histogram->sum(), 55.5);
  EXPECT_DOUBLE_EQ(histogram->min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram->max(), 50.0);
  ASSERT_EQ(histogram->bucket_counts().size(), 3u);
  EXPECT_EQ(histogram->bucket_counts()[0], 1);
  EXPECT_EQ(histogram->bucket_counts()[1], 1);
  EXPECT_EQ(histogram->bucket_counts()[2], 1);
}

TEST(MetricsRegistry, CsvShapeAndIntegerFormatting) {
  MetricsRegistry registry;
  registry.GetCounter("n");
  registry.GetGauge("x");
  registry.GetHistogram("h", {2.0});
  registry.GetCounter("n")->Increment(3);
  registry.GetGauge("x")->Set(1.5);
  registry.GetHistogram("h", {})->Observe(1.0);
  registry.AppendRow("step", 0, 7);

  const std::vector<std::string> columns = registry.ColumnNames();
  const std::vector<std::string> expected = {
      "n", "x", "h.count", "h.sum", "h.min", "h.max", "h.le_2", "h.le_inf"};
  EXPECT_EQ(columns, expected);

  const std::string csv = registry.ToCsv();
  EXPECT_EQ(csv,
            "kind,epoch,step,n,x,h.count,h.sum,h.min,h.max,h.le_2,h.le_inf\n"
            "step,0,7,3,1.5,1,1,1,1,1,0\n");

  const std::string jsonl = registry.ToJsonLines();
  EXPECT_NE(jsonl.find("\"kind\":\"step\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"x\":1.5"), std::string::npos);
}

TEST(MetricsRegistry, EncodeDecodeRoundTripsBitExactly) {
  MetricsRegistry registry;
  registry.GetCounter("steps")->Increment(41);
  registry.GetGauge("loss")->Set(0.1);  // not exactly representable
  registry.GetGauge("tau")->Set(5.0 * 0.9 * 0.9);
  obs::Histogram* histogram = registry.GetHistogram("norm", {0.5, 1.0});
  histogram->Observe(0.3);
  histogram->Observe(0.7);
  registry.AppendRow("step", 0, 1);
  registry.GetCounter("steps")->Increment();
  registry.AppendRow("epoch", 0, 2);

  const std::string encoded = registry.EncodeState();
  MetricsRegistry restored;
  ASSERT_TRUE(restored.DecodeState(encoded).ok());
  // Bit-exact: the restored registry re-encodes to the same bytes and
  // produces the same CSV.
  EXPECT_EQ(restored.EncodeState(), encoded);
  EXPECT_EQ(restored.ToCsv(), registry.ToCsv());
  EXPECT_EQ(restored.GetCounter("steps")->value(), 42);
  EXPECT_EQ(restored.GetGauge("loss")->value(), 0.1);
}

TEST(MetricsRegistry, DecodeRejectsCorruptionAndEmptiesRegistry) {
  MetricsRegistry source;
  source.GetCounter("a")->Increment(2);
  source.GetGauge("b")->Set(3.5);
  source.AppendRow("step", 1, 2);
  const std::string encoded = source.EncodeState();

  // Truncation at every line boundary after the header must fail cleanly.
  std::vector<size_t> newlines;
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] == '\n') newlines.push_back(i);
  }
  ASSERT_GE(newlines.size(), 2u);
  for (size_t cut = 0; cut + 1 < newlines.size(); ++cut) {
    MetricsRegistry target;
    const std::string truncated =
        encoded.substr(0, newlines[cut] + 1) + "counter broken";
    EXPECT_FALSE(target.DecodeState(truncated).ok());
    EXPECT_TRUE(target.ColumnNames().empty());
    EXPECT_TRUE(target.rows().empty());
  }
  MetricsRegistry target;
  EXPECT_FALSE(target.DecodeState("not a metrics state").ok());
  EXPECT_FALSE(target.DecodeState("obsv 2\n").ok());
  EXPECT_TRUE(target.DecodeState("").ok());  // empty = empty registry
}

TEST(MetricsRegistry, StripWallColumnsDropsOnlyWallColumns) {
  MetricsRegistry registry;
  registry.GetGauge("loss")->Set(1.0);
  registry.GetGauge("wall/elapsed_sec")->Set(123.0);
  registry.GetCounter("steps")->Increment();
  registry.AppendRow("step", 0, 0);
  const std::string stripped =
      MetricsRegistry::StripWallColumns(registry.ToCsv());
  EXPECT_EQ(stripped,
            "kind,epoch,step,loss,steps\n"
            "step,0,0,1,1\n");
}

TEST(MetricsRegistry, WriteSinksProducesBothFiles) {
  MetricsRegistry registry;
  registry.GetGauge("g")->Set(2.0);
  registry.AppendRow("epoch", 0, 0);
  const std::string base = TempPath("sinks");
  RemoveSinkFiles(base);
  ASSERT_TRUE(registry.WriteSinks(base).ok());
  StatusOr<std::string> csv = ReadFileToString(base + ".csv");
  StatusOr<std::string> jsonl = ReadFileToString(base + ".jsonl");
  ASSERT_TRUE(csv.ok());
  ASSERT_TRUE(jsonl.ok());
  EXPECT_EQ(csv.value(), registry.ToCsv());
  EXPECT_EQ(jsonl.value(), registry.ToJsonLines());
  RemoveSinkFiles(base);
}

// ---------------------------------------------------------------------------
// Search integration: bit-transparency, coverage, recorded content.

TEST(Observability, SearchMetricsRecordExpectedRows) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  MetricsRegistry registry;
  options.metrics = &registry;
  options.metrics_every_n_batches = 2;
  const SearchResult result = JointSearcher(options).Search(data);

  // 2 epochs x 4 steps: 4 "step" rows (every 2nd healthy batch) and one
  // "epoch" row per epoch.
  int64_t step_rows = 0;
  int64_t epoch_rows = 0;
  for (const MetricsRegistry::Row& row : registry.rows()) {
    step_rows += row.kind == "step";
    epoch_rows += row.kind == "epoch";
  }
  EXPECT_EQ(step_rows, 4);
  EXPECT_EQ(epoch_rows, 2);
  EXPECT_EQ(registry.GetCounter(core::kMetricStepsTotal)->value(), 8);
  EXPECT_EQ(registry.GetCounter(core::kMetricSkippedSteps)->value(), 0);

  // The final epoch row's val_loss_epoch equals the search result's final
  // validation loss bit-for-bit (same accumulator, read not recomputed).
  const std::vector<std::string> columns = registry.ColumnNames();
  size_t val_loss_column = columns.size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == core::kMetricValLossEpoch) val_loss_column = i;
  }
  ASSERT_LT(val_loss_column, columns.size());
  const MetricsRegistry::Row& last = registry.rows().back();
  EXPECT_EQ(last.kind, "epoch");
  EXPECT_EQ(last.values[val_loss_column], result.final_validation_loss);

  // τ decayed from its initial value and the entropies are positive for a
  // freshly-initialized (near-uniform) architecture.
  size_t tau_column = 0;
  size_t alpha_column = 0;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == core::kMetricTau) tau_column = i;
    if (columns[i] == core::kMetricAlphaEntropy) alpha_column = i;
  }
  EXPECT_LT(last.values[tau_column], options.tau_init);
  EXPECT_GT(last.values[alpha_column], 0.0);
}

TEST(Observability, EnabledObservabilityIsBitTransparentAcrossThreads) {
  const PreparedData data = TinyData();
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));

    // Reference run: no tracer, no metrics.
    const SearchResult plain = JointSearcher(TinyOptions()).Search(data);

    // Instrumented run: tracer + metrics registry + file sinks, all on.
    SearchOptions instrumented = TinyOptions();
    MetricsRegistry registry;
    instrumented.metrics = &registry;
    instrumented.metrics_path = TempPath("transparency");
    instrumented.metrics_every_n_batches = 1;
    instrumented.trace_path = TempPath("transparency.trace.json");
    RemoveSinkFiles(instrumented.metrics_path);
    const SearchResult traced = JointSearcher(instrumented).Search(data);

    // Bit-identical outcome.
    EXPECT_EQ(plain.genotype, traced.genotype);
    EXPECT_EQ(plain.final_validation_loss, traced.final_validation_loss);

    // The aggregate op table accounts for >= 90% of the search wall time
    // (acceptance criterion; in practice it is > 99%).
    EXPECT_GE(trace::Coverage("search"), 0.9);

    // All four output files landed.
    for (const std::string& path :
         {instrumented.metrics_path + ".csv",
          instrumented.metrics_path + ".jsonl", instrumented.trace_path,
          instrumented.trace_path + ".ops.csv"}) {
      EXPECT_TRUE(FileExists(path)) << path;
    }
    RemoveSinkFiles(instrumented.metrics_path);
    std::remove(instrumented.trace_path.c_str());
    std::remove((instrumented.trace_path + ".ops.csv").c_str());
  }
  SetNumThreads(1);
}

TEST(Observability, TrainerMetricsAndTraceAreBitTransparent) {
  const PreparedData data = TinyData();
  models::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.max_batches_per_epoch = 3;
  config.early_stop_patience = 1;

  auto make_model = [&] {
    models::ModelContext context;
    context.num_nodes = data.num_nodes;
    context.in_features = data.in_features;
    context.input_length = data.window.input_length;
    context.output_length = data.window.output_length;
    context.hidden_dim = 8;
    context.seed = 5;
    context.adjacency = data.adjacency;
    return models::CreateBaseline("STGCN", context);
  };

  auto plain_model = make_model();
  const models::EvalResult plain =
      models::TrainAndEvaluate(plain_model.get(), data, config);

  models::TrainConfig instrumented = config;
  MetricsRegistry registry;
  instrumented.metrics = &registry;
  instrumented.metrics_every_n_batches = 1;
  instrumented.trace_path = TempPath("trainer.trace.json");
  auto traced_model = make_model();
  const models::EvalResult traced =
      models::TrainAndEvaluate(traced_model.get(), data, instrumented);

  EXPECT_EQ(plain.final_train_loss, traced.final_train_loss);
  EXPECT_EQ(plain.average.mae, traced.average.mae);
  EXPECT_EQ(plain.epochs_run, traced.epochs_run);

  int64_t epoch_rows = 0;
  for (const MetricsRegistry::Row& row : registry.rows()) {
    epoch_rows += row.kind == "epoch";
  }
  EXPECT_EQ(epoch_rows, traced.epochs_run);
  EXPECT_GT(registry.GetCounter("batches_total")->value(), 0);
  std::remove(instrumented.trace_path.c_str());
  std::remove((instrumented.trace_path + ".ops.csv").c_str());
}

}  // namespace
}  // namespace autocts
