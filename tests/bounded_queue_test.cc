// Direct unit coverage for common/bounded_queue.h — the micro-batching
// coalescer under the forecast server. The serve/net suites exercise it
// end-to-end; this one pins the queue's own contract so a regression fails
// here with a one-line repro instead of as a flaky serving test:
//   - TryPush back-pressure at capacity (and the untouched-on-failure rule)
//   - PopBatch partial drains: up to max_items in one wakeup, never more
//   - Close() semantics: wakes blocked consumers, rejects new pushes,
//     drains what was accepted, returns 0 only when closed AND empty
//   - concurrent producers/consumers conserve items (run under TSan in
//     tools/tier1_verify.sh)
#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace autocts {
namespace {

TEST(BoundedQueueTest, TryPushFailsAtCapacityAndLeavesItemUntouched) {
  BoundedQueue<int> queue(/*capacity=*/2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.TryPush(a));
  EXPECT_TRUE(queue.TryPush(b));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_FALSE(queue.TryPush(c));
  EXPECT_EQ(c, 3);  // rejected item must be untouched
  EXPECT_EQ(queue.size(), 2u);

  // Draining one slot re-admits exactly one push.
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(1, &out), 1u);
  EXPECT_TRUE(queue.TryPush(c));
  EXPECT_FALSE(queue.TryPush(a));
}

// Move-only items prove the untouched-on-failure rule matters: a rejected
// unique_ptr must still own its payload.
TEST(BoundedQueueTest, RejectedMoveOnlyItemRetainsOwnership) {
  BoundedQueue<std::unique_ptr<int>> queue(/*capacity=*/1);
  std::unique_ptr<int> first = std::make_unique<int>(7);
  std::unique_ptr<int> second = std::make_unique<int>(9);
  EXPECT_TRUE(queue.TryPush(first));
  EXPECT_EQ(first, nullptr);  // accepted: moved from
  EXPECT_FALSE(queue.TryPush(second));
  ASSERT_NE(second, nullptr);  // rejected: still ours
  EXPECT_EQ(*second, 9);
}

TEST(BoundedQueueTest, PopBatchDrainsUpToMaxItemsPerWakeup) {
  BoundedQueue<int> queue(/*capacity=*/8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.TryPush(i));
  }
  std::vector<int> out;
  // One wakeup takes min(max_items, queued), appending to *out.
  EXPECT_EQ(queue.PopBatch(3, &out), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.PopBatch(3, &out), 2u);  // partial drain: only 2 left
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, PopBatchBlocksUntilAProducerArrives) {
  BoundedQueue<int> queue(/*capacity=*/4);
  std::vector<int> out;
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    EXPECT_EQ(queue.PopBatch(4, &out), 1u);
    popped.store(true);
  });
  // The consumer must be parked, not spinning on an empty pop.
  EXPECT_FALSE(popped.load());
  int item = 42;
  EXPECT_TRUE(queue.TryPush(item));
  consumer.join();
  EXPECT_TRUE(popped.load());
  EXPECT_EQ(out, (std::vector<int>{42}));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumersWithZero) {
  BoundedQueue<int> queue(/*capacity=*/4);
  constexpr int kConsumers = 3;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> out;
      EXPECT_EQ(queue.PopBatch(4, &out), 0u);
      woke.fetch_add(1);
    });
  }
  queue.Close();
  for (std::thread& thread : consumers) thread.join();
  EXPECT_EQ(woke.load(), kConsumers);
}

TEST(BoundedQueueTest, CloseRejectsPushesButDrainsAcceptedItems) {
  BoundedQueue<int> queue(/*capacity=*/4);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.TryPush(a));
  EXPECT_TRUE(queue.TryPush(b));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(c));  // closed: no new work
  // Graceful shutdown: accepted items still drain...
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(8, &out), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  // ...and only then does PopBatch report closed-and-empty.
  EXPECT_EQ(queue.PopBatch(8, &out), 0u);
  queue.Close();  // idempotent
  EXPECT_TRUE(queue.closed());
}

// Multi-producer/multi-consumer conservation: every pushed item is popped
// exactly once, across blocking wakeups and back-pressure retries. TSan
// (tier1_verify.sh) checks the same run for data races.
TEST(BoundedQueueTest, ConcurrentProducersAndConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  constexpr int kTotal = kProducers * kPerProducer;
  BoundedQueue<int> queue(/*capacity=*/8);  // small: forces back-pressure

  std::vector<std::vector<int>> popped(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::vector<int> batch;
      while (true) {
        batch.clear();
        const size_t got = queue.PopBatch(5, &batch);
        if (got == 0) return;  // closed and drained
        popped[c].insert(popped[c].end(), batch.begin(), batch.end());
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        while (!queue.TryPush(item)) {
          std::this_thread::yield();  // back-pressure: retry until accepted
        }
      }
    });
  }
  for (std::thread& thread : producers) thread.join();
  queue.Close();
  for (std::thread& thread : consumers) thread.join();

  std::vector<int> all;
  for (const std::vector<int>& part : popped) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), static_cast<size_t>(kTotal));
  std::sort(all.begin(), all.end());
  std::vector<int> expected(kTotal);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);  // each item exactly once — no loss, no dup
}

}  // namespace
}  // namespace autocts
