#include <gtest/gtest.h>

#include <cmath>

#include "graph/adaptive_adjacency.h"
#include "graph/adjacency.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

Tensor TestAdjacency() {
  // A small weighted digraph with an isolated node (3).
  Tensor a = Tensor::Zeros({4, 4});
  a.At({0, 1}) = 1.0;
  a.At({1, 0}) = 0.5;
  a.At({1, 2}) = 2.0;
  a.At({2, 0}) = 1.0;
  return a;
}

TEST(DistanceAdjacency, SymmetricZeroDiagonalThresholded) {
  Rng rng(1);
  const Tensor positions = graph::RandomPositions(10, &rng);
  const Tensor a =
      graph::DistanceGaussianAdjacency(positions, /*sigma=*/0.4,
                                       /*threshold=*/0.3);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.At({i, i}), 0.0);
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(a.At({i, j}), a.At({j, i}), 1e-12);  // Euclidean distance.
      EXPECT_TRUE(a.At({i, j}) == 0.0 || a.At({i, j}) >= 0.3);
      EXPECT_LE(a.At({i, j}), 1.0);
    }
  }
}

TEST(DistanceAdjacency, CloserNodesGetLargerWeights) {
  Tensor positions = Tensor::FromVector({3, 2}, {0.0, 0.0,   // node 0
                                                 0.1, 0.0,   // near 0
                                                 0.9, 0.9});  // far away
  const Tensor a =
      graph::DistanceGaussianAdjacency(positions, 0.5, 0.0);
  EXPECT_GT(a.At({0, 1}), a.At({0, 2}));
}

TEST(Normalization, AddSelfLoops) {
  const Tensor a = graph::AddSelfLoops(TestAdjacency());
  EXPECT_EQ(a.At({0, 0}), 1.0);
  EXPECT_EQ(a.At({0, 1}), 1.0);
}

TEST(Normalization, RowNormalizeMakesRowsStochastic) {
  const Tensor p = graph::RowNormalize(TestAdjacency());
  for (int64_t i = 0; i < 3; ++i) {  // Node 3 has degree 0.
    double row_sum = 0.0;
    for (int64_t j = 0; j < 4; ++j) row_sum += p.At({i, j});
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
  // Zero-degree row stays zero instead of dividing by zero.
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(p.At({3, j}), 0.0);
}

TEST(Normalization, SymNormalizeIsSymmetricForSymmetricInput) {
  Rng rng(2);
  const Tensor positions = graph::RandomPositions(6, &rng);
  const Tensor a = graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  const Tensor s = graph::SymNormalize(a);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(s.At({i, j}), s.At({j, i}), 1e-12);
    }
  }
}

TEST(Eigen, PowerIterationFindsDominantEigenvalue) {
  // Diagonal matrix: eigenvalues are the entries.
  Tensor m = Tensor::Zeros({3, 3});
  m.At({0, 0}) = 2.0;
  m.At({1, 1}) = 7.0;
  m.At({2, 2}) = 1.0;
  EXPECT_NEAR(graph::LargestEigenvalue(m), 7.0, 1e-6);
}

TEST(Laplacian, ScaledLaplacianSpectrumInMinusOneOne) {
  Rng rng(3);
  const Tensor positions = graph::RandomPositions(8, &rng);
  const Tensor a = graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  const Tensor scaled = graph::ScaledLaplacian(a);
  // Largest |eigenvalue| of the scaled Laplacian should be <= ~1.
  EXPECT_LE(graph::LargestEigenvalue(scaled), 1.0 + 1e-6);
}

TEST(Chebyshev, RecursionMatchesDefinition) {
  Rng rng(4);
  const Tensor positions = graph::RandomPositions(5, &rng);
  const Tensor a = graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  const Tensor l = graph::ScaledLaplacian(a);
  const std::vector<Tensor> polys = graph::ChebyshevPolynomials(l, 4);
  ASSERT_EQ(polys.size(), 4u);
  EXPECT_TRUE(polys[0].AllClose(Tensor::Eye(5), 1e-12));
  EXPECT_TRUE(polys[1].AllClose(l, 1e-12));
  const Tensor expected_t2 =
      Sub(MulScalar(MatMul(l, polys[1]), 2.0), polys[0]);
  EXPECT_TRUE(polys[2].AllClose(expected_t2, 1e-9));
  const Tensor expected_t3 =
      Sub(MulScalar(MatMul(l, polys[2]), 2.0), polys[1]);
  EXPECT_TRUE(polys[3].AllClose(expected_t3, 1e-9));
}

TEST(Diffusion, TransitionPowersAreStochasticAndComposed) {
  const Tensor a = TestAdjacency();
  const graph::DiffusionTransitions transitions =
      graph::BuildDiffusionTransitions(a, 3);
  ASSERT_EQ(transitions.forward.size(), 4u);
  ASSERT_EQ(transitions.backward.size(), 4u);
  EXPECT_TRUE(transitions.forward[0].AllClose(Tensor::Eye(4), 1e-12));
  // P^2 == P * P.
  EXPECT_TRUE(transitions.forward[2].AllClose(
      MatMul(transitions.forward[1], transitions.forward[1]), 1e-12));
  EXPECT_TRUE(transitions.backward[3].AllClose(
      MatMul(transitions.backward[2], transitions.backward[1]), 1e-12));
  // Row sums of P stay in [0, 1] (sub-stochastic due to dangling nodes).
  for (int64_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < 4; ++j) row += transitions.forward[1].At({i, j});
    EXPECT_LE(row, 1.0 + 1e-12);
  }
  // Backward uses the transposed graph: node 3 has in-degree 0 => its
  // backward row is zero.
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(transitions.backward[1].At({3, j}), 0.0);
  }
}

TEST(AdaptiveAdjacency, RowStochasticAndDifferentiable) {
  Rng rng(5);
  graph::AdaptiveAdjacency adaptive(6, 4, &rng);
  EXPECT_EQ(adaptive.NumParameters(), 2 * 6 * 4);
  Variable a = adaptive.Forward();
  EXPECT_EQ(a.shape(), (Shape{6, 6}));
  for (int64_t i = 0; i < 6; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < 6; ++j) {
      row += a.value().At({i, j});
      EXPECT_GE(a.value().At({i, j}), 0.0);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
  // Gradients reach the embeddings.
  Variable loss = ag::SumAll(ag::Mul(a, a));
  loss.Backward();
  for (const Variable& p : adaptive.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(AdaptiveAdjacency, ReverseUsesSwappedEmbeddings) {
  Rng rng(6);
  graph::AdaptiveAdjacency adaptive(5, 3, &rng);
  const Tensor forward = adaptive.Forward().value();
  const Tensor reverse = adaptive.ForwardReverse().value();
  EXPECT_EQ(reverse.shape(), (Shape{5, 5}));
  EXPECT_FALSE(forward.AllClose(reverse, 1e-6));
}

}  // namespace
}  // namespace autocts
