#include <gtest/gtest.h>

#include "common/file_io.h"
#include "core/derived_model.h"
#include "core/genotype.h"
#include "core/micro_dag.h"
#include "core/operator_set.h"
#include "core/supernet.h"
#include "graph/adjacency.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using core::BlockGenotype;
using core::EdgeGene;
using core::Genotype;
using core::MicroDagCell;
using core::OperatorSet;
using core::PairIndex;
using core::Supernet;
using core::SupernetConfig;

Genotype ExampleGenotype() {
  Genotype genotype;
  genotype.nodes_per_block = 4;
  BlockGenotype b0;
  b0.edges = {{0, 1, "gdcc"}, {1, 2, "dgcn"}, {0, 2, "identity"},
              {2, 3, "inf_s"}, {0, 3, "inf_t"}};
  BlockGenotype b1;
  b1.edges = {{0, 1, "dgcn"}, {1, 2, "gdcc"}, {0, 2, "gdcc"},
              {2, 3, "dgcn"}, {1, 3, "identity"}};
  genotype.blocks = {b0, b1, b0};
  genotype.block_inputs = {0, 1, 1};
  return genotype;
}

models::ModelContext SmallModelContext() {
  models::ModelContext context;
  context.num_nodes = 4;
  context.in_features = 2;
  context.input_length = 8;
  context.output_length = 3;
  context.hidden_dim = 8;
  context.seed = 5;
  Rng rng(9);
  const Tensor positions = graph::RandomPositions(4, &rng);
  context.adjacency = graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  return context;
}

// ---------------------------------------------------------------------------
// Operator sets.
// ---------------------------------------------------------------------------

TEST(OperatorSets, SizesMatchThePaper) {
  EXPECT_EQ(core::CompactOperatorSet().size(), 6);  // Section 3.2.3.
  EXPECT_EQ(core::FullOperatorSet().size(), 12);    // All of Table 1 + 2.
  EXPECT_EQ(core::AutoStgOperatorSet().size(), 4);  // conv1d + dgcn + 2.
}

TEST(OperatorSets, CompactSetExcludesRnnFamily) {
  // Principle 1 disregards the RNN family (Figure 6 discussion).
  const OperatorSet compact = core::CompactOperatorSet();
  for (const std::string& op : compact.op_names) {
    EXPECT_NE(op, "lstm");
    EXPECT_NE(op, "gru");
  }
  // Principle 2 keeps the strongest variant per family.
  const auto& names = compact.op_names;
  auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("gdcc"));
  EXPECT_TRUE(has("inf_t"));
  EXPECT_TRUE(has("dgcn"));
  EXPECT_TRUE(has("inf_s"));
  EXPECT_FALSE(has("conv1d"));
  EXPECT_FALSE(has("cheb_gcn"));
  EXPECT_FALSE(has("trans_t"));
}

TEST(OperatorSets, ParametricClassification) {
  EXPECT_FALSE(core::IsParametricOp("zero"));
  EXPECT_FALSE(core::IsParametricOp("identity"));
  EXPECT_TRUE(core::IsParametricOp("gdcc"));
  EXPECT_TRUE(core::IsParametricOp("dgcn"));
}

// ---------------------------------------------------------------------------
// Genotype structure and serialization.
// ---------------------------------------------------------------------------

TEST(Genotype, PairIndexingIsDense) {
  EXPECT_EQ(PairIndex(0, 1), 0);
  EXPECT_EQ(PairIndex(0, 2), 1);
  EXPECT_EQ(PairIndex(1, 2), 2);
  EXPECT_EQ(PairIndex(0, 3), 3);
  EXPECT_EQ(core::NumPairs(5), 10);
  // Dense and unique across all pairs.
  std::vector<bool> seen(core::NumPairs(6), false);
  for (int64_t j = 1; j < 6; ++j) {
    for (int64_t i = 0; i < j; ++i) {
      const int64_t p = PairIndex(i, j);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, core::NumPairs(6));
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST(Genotype, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(ExampleGenotype().Validate().ok());
}

TEST(Genotype, ValidateRejectsMalformed) {
  Genotype g = ExampleGenotype();
  g.blocks[0].edges[0] = {2, 1, "gdcc"};  // from >= to.
  EXPECT_FALSE(g.Validate().ok());

  g = ExampleGenotype();
  g.blocks[0].edges[0].to = 9;  // Out of range.
  EXPECT_FALSE(g.Validate().ok());

  g = ExampleGenotype();
  g.block_inputs[1] = 5;  // References a later block.
  EXPECT_FALSE(g.Validate().ok());

  g = ExampleGenotype();
  g.blocks[0].edges[0].op = "";  // Empty operator.
  EXPECT_FALSE(g.Validate().ok());
}

TEST(Genotype, TextRoundTripPreservesEverything) {
  const Genotype original = ExampleGenotype();
  const std::string text = original.ToText();
  StatusOr<Genotype> parsed = Genotype::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), original);
}

#ifndef AUTOCTS_TESTDATA_DIR
#error "AUTOCTS_TESTDATA_DIR must be defined by the build"
#endif

// Golden-file contract: the genotype text format is persisted by search
// checkpoints and candidate sets, so any drift must be deliberate. If this
// test fails because the format changed on purpose, add a new
// genotype_golden_v<N>.txt fixture (do not edit v1 in place) and bump the
// readers that persist genotypes.
TEST(Genotype, GoldenFileRoundTripGuardsTextFormat) {
  const std::string path =
      std::string(AUTOCTS_TESTDATA_DIR) + "/genotype_golden_v1.txt";
  StatusOr<std::string> golden = ReadFileToString(path);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  // Serializing today's ExampleGenotype reproduces the checked-in bytes.
  EXPECT_EQ(ExampleGenotype().ToText(), golden.value())
      << "genotype text format drifted from the v1 golden fixture; "
         "add a new versioned fixture instead of editing v1";

  // And the checked-in bytes still parse to the same structure.
  StatusOr<Genotype> parsed = Genotype::FromText(golden.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), ExampleGenotype());
}

TEST(Genotype, RandomizedRoundTripProperty) {
  // Property: any structurally valid genotype survives serialization.
  Rng rng(13);
  const std::vector<std::string> ops = core::CompactOperatorSet().op_names;
  for (int trial = 0; trial < 25; ++trial) {
    Genotype g;
    g.nodes_per_block = 3 + rng.UniformInt(4);  // 3..6
    const int64_t blocks = 1 + rng.UniformInt(5);
    for (int64_t b = 0; b < blocks; ++b) {
      BlockGenotype block;
      for (int64_t j = 1; j < g.nodes_per_block; ++j) {
        block.edges.push_back(
            {j - 1, j, ops[1 + rng.UniformInt(ops.size() - 1)]});
        if (j >= 2) {
          block.edges.push_back(
              {rng.UniformInt(j - 1), j,
               ops[1 + rng.UniformInt(ops.size() - 1)]});
        }
      }
      g.blocks.push_back(block);
      g.block_inputs.push_back(rng.UniformInt(b + 1));
    }
    ASSERT_TRUE(g.Validate().ok());
    StatusOr<Genotype> parsed = Genotype::FromText(g.ToText());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), g) << "trial " << trial;
  }
}

TEST(Genotype, FromTextRejectsGarbage) {
  EXPECT_FALSE(Genotype::FromText("not a genotype").ok());
  EXPECT_FALSE(Genotype::FromText("nodes_per_block = 4\n").ok());
  // Edge referencing a block that does not exist.
  EXPECT_FALSE(Genotype::FromText("nodes_per_block = 4\nnum_blocks = 1\n"
                                  "block_input = 0\nedge = 3 0 1 gdcc\n")
                   .ok());
}

TEST(Genotype, HistogramAndPrettyString) {
  const Genotype g = ExampleGenotype();
  const auto histogram = g.OperatorHistogram();
  int64_t total = 0;
  for (const auto& [op, count] : histogram) total += count;
  EXPECT_EQ(total, 15);  // 3 blocks x 5 edges.
  const std::string pretty = g.ToPrettyString();
  EXPECT_NE(pretty.find("block 1"), std::string::npos);
  EXPECT_NE(pretty.find("gdcc"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Micro-DAG cell behaviour.
// ---------------------------------------------------------------------------

TEST(MicroDag, ForwardPreservesShapeAcrossConfigurations) {
  Rng rng(1);
  ops::OpContext op_context;
  op_context.channels = 8;
  op_context.num_nodes = 4;
  op_context.rng = &rng;
  Rng graph_rng(2);
  const Tensor positions = graph::RandomPositions(4, &graph_rng);
  op_context.adjacency =
      graph::DistanceGaussianAdjacency(positions, 0.5, 0.1);
  for (const int64_t m : {3, 5}) {
    for (const int64_t partial : {1, 4}) {
      MicroDagCell cell(m, core::CompactOperatorSet(), op_context, partial,
                        &rng);
      Variable x(Tensor::Rand({2, 6, 4, 8}, &rng, -1.0, 1.0), false);
      EXPECT_EQ(cell.Forward(x, 1.0).shape(), x.shape())
          << "M=" << m << " partial=" << partial;
    }
  }
}

TEST(MicroDag, AlphaAndBetaWeightsAreDistributions) {
  Rng rng(3);
  ops::OpContext op_context;
  op_context.channels = 4;
  op_context.num_nodes = 3;
  op_context.rng = &rng;
  op_context.adaptive = std::make_shared<graph::AdaptiveAdjacency>(3, 4, &rng);
  MicroDagCell cell(4, core::CompactOperatorSet(), op_context, 1, &rng);
  for (int64_t p = 0; p < core::NumPairs(4); ++p) {
    const Tensor w = cell.AlphaWeights(p);
    EXPECT_NEAR(SumAll(w), 1.0, 1e-9);
    EXPECT_GE(MinAll(w), 0.0);
  }
  for (int64_t j = 1; j < 4; ++j) {
    const Tensor w = cell.BetaWeights(j);
    EXPECT_EQ(w.size(), j);
    EXPECT_NEAR(SumAll(w), 1.0, 1e-9);
  }
  // Arch parameters: one alpha matrix + M-1 betas, none in Parameters().
  EXPECT_EQ(cell.ArchParameters().size(), 1u + 3u);
  for (const Variable& arch : cell.ArchParameters()) {
    for (const Variable& weight : cell.Parameters()) {
      EXPECT_NE(arch.node().get(), weight.node().get());
    }
  }
}

// ---------------------------------------------------------------------------
// Supernet derivation rules (Eq. 7 + Section 3.2.2 derivation protocol).
// ---------------------------------------------------------------------------

TEST(Supernet, DeriveRespectsStructuralRules) {
  SupernetConfig config;
  config.micro_nodes = 5;
  config.macro_blocks = 4;
  config.hidden_dim = 8;
  Supernet supernet(config, SmallModelContext());
  const Genotype genotype = supernet.Derive();
  ASSERT_TRUE(genotype.Validate().ok());
  EXPECT_EQ(genotype.num_blocks(), 4);
  EXPECT_EQ(genotype.nodes_per_block, 5);
  for (const BlockGenotype& block : genotype.blocks) {
    for (int64_t j = 1; j < 5; ++j) {
      int64_t incoming = 0;
      bool has_predecessor_edge = false;
      for (const EdgeGene& edge : block.edges) {
        if (edge.to != j) continue;
        ++incoming;
        if (edge.from == j - 1) has_predecessor_edge = true;
        EXPECT_NE(edge.op, "zero");  // Zero excluded at derivation.
      }
      // 2 incoming edges per node (1 for node 1 which has one candidate).
      EXPECT_EQ(incoming, j == 1 ? 1 : 2);
      EXPECT_TRUE(has_predecessor_edge);  // h_{j-1} -> h_j always kept.
    }
  }
}

TEST(Supernet, EdgesPerNodeThreeKeepsMore) {
  SupernetConfig config;
  config.micro_nodes = 5;
  config.macro_blocks = 2;
  config.hidden_dim = 8;
  config.edges_per_node = 3;
  Supernet supernet(config, SmallModelContext());
  const Genotype genotype = supernet.Derive();
  for (const BlockGenotype& block : genotype.blocks) {
    int64_t incoming_h4 = 0;
    for (const EdgeGene& edge : block.edges) {
      if (edge.to == 4) ++incoming_h4;
    }
    EXPECT_EQ(incoming_h4, 3);
  }
}

TEST(Supernet, ForwardShapeAndArchParameterCount) {
  SupernetConfig config;
  config.micro_nodes = 3;
  config.macro_blocks = 2;
  config.hidden_dim = 8;
  Supernet supernet(config, SmallModelContext());
  Rng rng(4);
  Variable x(Tensor::Rand({2, 8, 4, 2}, &rng, -1.0, 1.0), false);
  EXPECT_EQ(supernet.Forward(x).shape(), (Shape{2, 3, 4, 1}));
  // Arch params: per cell (alpha + M-1 betas) = 3, plus B gammas.
  EXPECT_EQ(supernet.ArchParameters().size(), 2u * 3u + 2u);
}

TEST(Supernet, TemperatureChangesForwardOutput) {
  SupernetConfig config;
  config.micro_nodes = 3;
  config.macro_blocks = 1;
  config.hidden_dim = 8;
  Supernet supernet(config, SmallModelContext());
  supernet.SetTraining(false);
  // The output head's last layer is zero-initialized (pure persistence at
  // init), which would hide the backbone; give it weight so the
  // temperature's effect on the mixed edges reaches the output.
  for (auto& [name, parameter] : supernet.NamedParameters()) {
    if (name.find("head.fc2") != std::string::npos) {
      parameter.mutable_value().Fill(0.5);
    }
  }
  Rng rng(5);
  Variable x(Tensor::Rand({1, 8, 4, 2}, &rng, -1.0, 1.0), false);
  supernet.SetTemperature(5.0);
  const Tensor smooth = supernet.Forward(x).value();
  supernet.SetTemperature(0.01);
  const Tensor sharp = supernet.Forward(x).value();
  EXPECT_FALSE(smooth.AllClose(sharp, 1e-9));
}

// ---------------------------------------------------------------------------
// Derived model.
// ---------------------------------------------------------------------------

TEST(DerivedModel, BuildsFromGenotypeAndForwardMatchesContract) {
  core::DerivedModel model(ExampleGenotype(), SmallModelContext());
  Rng rng(6);
  Variable x(Tensor::Rand({2, 8, 4, 2}, &rng, -1.0, 1.0), false);
  EXPECT_EQ(model.Forward(x).shape(), (Shape{2, 3, 4, 1}));
  EXPECT_GT(model.NumParameters(), 100);
}

TEST(DerivedModel, SupernetDerivedGenotypeIsInstantiable) {
  SupernetConfig config;
  config.micro_nodes = 5;
  config.macro_blocks = 3;
  config.hidden_dim = 8;
  Supernet supernet(config, SmallModelContext());
  core::DerivedModel model(supernet.Derive(), SmallModelContext());
  Rng rng(7);
  Variable x(Tensor::Rand({1, 8, 4, 2}, &rng, -1.0, 1.0), false);
  EXPECT_EQ(model.Forward(x).shape(), (Shape{1, 3, 4, 1}));
}

TEST(DerivedModel, GradientsReachAllParameters) {
  core::DerivedModel model(ExampleGenotype(), SmallModelContext());
  Rng rng(8);
  Variable x(Tensor::Rand({1, 8, 4, 2}, &rng, -1.0, 1.0), false);
  Variable loss = ag::SumAll(ag::Mul(model.Forward(x), model.Forward(x)));
  loss.Backward();
  for (const auto& [name, parameter] : model.NamedParameters()) {
    EXPECT_TRUE(parameter.has_grad()) << name;
  }
}

TEST(DerivedModel, InvalidGenotypeDies) {
  Genotype bad = ExampleGenotype();
  bad.block_inputs[2] = 7;
  EXPECT_DEATH(core::DerivedModel(bad, SmallModelContext()), "");
}

}  // namespace
}  // namespace autocts
