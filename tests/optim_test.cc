#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "autograd/variable_ops.h"
#include "optim/adam.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

// Minimizes f(w) = sum((w - target)^2) and returns the final w.
template <typename MakeOptimizer>
Tensor MinimizeQuadratic(MakeOptimizer make, int steps) {
  Variable w(Tensor::FromVector({3}, {5.0, -4.0, 2.0}), true);
  const Variable target(Tensor::FromVector({3}, {1.0, 2.0, 3.0}), false);
  auto optimizer = make(std::vector<Variable>{w});
  for (int i = 0; i < steps; ++i) {
    Variable loss = ag::MseLoss(w, target);
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
  }
  return w.value();
}

TEST(Sgd, ConvergesOnQuadratic) {
  const Tensor w = MinimizeQuadratic(
      [](std::vector<Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params),
                                            optim::Sgd::Options{.learning_rate = 0.2});
      },
      200);
  EXPECT_NEAR(w.data()[0], 1.0, 1e-3);
  EXPECT_NEAR(w.data()[1], 2.0, 1e-3);
  EXPECT_NEAR(w.data()[2], 3.0, 1e-3);
}

TEST(Sgd, MomentumAcceleratesFirstSteps) {
  // With momentum the second step is larger than the first-step size.
  auto run = [](double momentum) {
    Variable w(Tensor::Scalar(10.0), true);
    optim::Sgd opt({w}, {.learning_rate = 0.01, .momentum = momentum});
    double prev = w.value().item();
    double first_delta = 0.0;
    double second_delta = 0.0;
    for (int i = 0; i < 2; ++i) {
      Variable loss = ag::MseLoss(w, Variable(Tensor::Scalar(0.0), false));
      opt.ZeroGrad();
      loss.Backward();
      opt.Step();
      const double delta = std::abs(w.value().item() - prev);
      prev = w.value().item();
      if (i == 0) {
        first_delta = delta;
      } else {
        second_delta = delta;
      }
    }
    return std::make_pair(first_delta, second_delta);
  };
  const auto [f0, s0] = run(0.0);
  const auto [f1, s1] = run(0.9);
  EXPECT_NEAR(f0, f1, 1e-9);   // Same first step.
  EXPECT_GT(s1, s0 * 1.5);     // Momentum compounds.
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Variable w(Tensor::Scalar(1.0), true);
  optim::Sgd opt({w}, {.learning_rate = 0.1, .weight_decay = 1.0});
  // Zero-gradient step: only decay acts.
  Variable loss = ag::MulScalar(ag::SumAll(w), 0.0);
  opt.ZeroGrad();
  loss.Backward();
  opt.Step();
  EXPECT_NEAR(w.value().item(), 0.9, 1e-12);
}

TEST(Adam, ConvergesOnQuadratic) {
  const Tensor w = MinimizeQuadratic(
      [](std::vector<Variable> params) {
        return std::make_unique<optim::Adam>(
            std::move(params), optim::Adam::Options{.learning_rate = 0.1});
      },
      400);
  EXPECT_NEAR(w.data()[0], 1.0, 1e-2);
  EXPECT_NEAR(w.data()[1], 2.0, 1e-2);
  EXPECT_NEAR(w.data()[2], 3.0, 1e-2);
}

TEST(Adam, FirstStepHasLearningRateMagnitude) {
  // Adam's bias-corrected first step is ~lr regardless of gradient scale.
  for (const double scale : {1e-3, 1.0, 1e3}) {
    Variable w(Tensor::Scalar(0.0), true);
    optim::Adam opt({w}, {.learning_rate = 0.05});
    Variable loss = ag::MulScalar(ag::SumAll(w), scale);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    EXPECT_NEAR(std::abs(w.value().item()), 0.05, 0.05 * 0.01)
        << "gradient scale " << scale;
  }
}

TEST(Adam, SkipsParametersWithoutGradients) {
  Variable used(Tensor::Scalar(1.0), true);
  Variable unused(Tensor::Scalar(5.0), true);
  optim::Adam opt({used, unused}, {.learning_rate = 0.1});
  Variable loss = ag::SumAll(used);
  opt.ZeroGrad();
  loss.Backward();
  opt.Step();
  EXPECT_NE(used.value().item(), 1.0);
  EXPECT_EQ(unused.value().item(), 5.0);
}

// Drives one Adam step of f(w) = mse(w, target); used by the
// serialization tests to produce identical gradient sequences.
void QuadraticStep(optim::Adam* optimizer, Variable* w,
                   const Variable& target) {
  Variable loss = ag::MseLoss(*w, target);
  optimizer->ZeroGrad();
  loss.Backward();
  optimizer->Step();
}

void ExpectValuesBitsEqual(const Variable& a, const Variable& b) {
  ASSERT_EQ(a.value().size(), b.value().size());
  EXPECT_EQ(std::memcmp(a.value().data(), b.value().data(),
                        static_cast<size_t>(a.value().size()) *
                            sizeof(double)),
            0);
}

TEST(Adam, ExportImportResumesBitIdentically) {
  const Variable target(Tensor::FromVector({3}, {1.0, 2.0, 3.0}), false);
  Variable w_a(Tensor::FromVector({3}, {5.0, -4.0, 2.0}), true);
  optim::Adam a({w_a}, {.learning_rate = 0.05});
  for (int i = 0; i < 5; ++i) QuadraticStep(&a, &w_a, target);

  // Hand the mid-run state to a freshly-constructed optimizer.
  const optim::AdamState exported = a.ExportState();
  EXPECT_EQ(exported.step_count, 5);
  Variable w_b(w_a.value().Clone(), true);
  optim::Adam b({w_b}, {.learning_rate = 0.05});
  const Status status = b.ImportState(exported);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(b.step_count(), 5);

  // The next ten steps — bias correction included — match bit for bit.
  for (int i = 0; i < 10; ++i) {
    QuadraticStep(&a, &w_a, target);
    QuadraticStep(&b, &w_b, target);
    ExpectValuesBitsEqual(w_a, w_b);
  }
  EXPECT_EQ(a.step_count(), 15);
  EXPECT_EQ(b.step_count(), 15);
}

TEST(Adam, ImportRewindsToTheExportedInstant) {
  const Variable target(Tensor::FromVector({3}, {1.0, 2.0, 3.0}), false);
  Variable w(Tensor::FromVector({3}, {5.0, -4.0, 2.0}), true);
  optim::Adam opt({w}, {.learning_rate = 0.05});
  for (int i = 0; i < 3; ++i) QuadraticStep(&opt, &w, target);

  const optim::AdamState snapshot = opt.ExportState();
  const Tensor w_snapshot = w.value().Clone();
  for (int i = 0; i < 2; ++i) QuadraticStep(&opt, &w, target);
  const Tensor w_after = w.value().Clone();

  // Rewind parameter and optimizer, replay the same two steps: identical
  // bits. This also proves ExportState deep-copied (the extra steps above
  // would otherwise have polluted the snapshot).
  w.mutable_value() = w_snapshot.Clone();
  ASSERT_TRUE(opt.ImportState(snapshot).ok());
  EXPECT_EQ(opt.step_count(), 3);
  for (int i = 0; i < 2; ++i) QuadraticStep(&opt, &w, target);
  EXPECT_EQ(std::memcmp(w.value().data(), w_after.data(),
                        3 * sizeof(double)),
            0);
}

TEST(Adam, ImportRejectsMismatchedStateWithoutSideEffects) {
  const Variable target(Tensor::Zeros({2}), false);
  Variable w(Tensor::FromVector({2}, {1.0, -1.0}), true);
  Variable w_control(Tensor::FromVector({2}, {1.0, -1.0}), true);
  optim::Adam opt({w}, {.learning_rate = 0.1});
  optim::Adam control({w_control}, {.learning_rate = 0.1});
  QuadraticStep(&opt, &w, target);
  QuadraticStep(&control, &w_control, target);

  optim::AdamState wrong_slots;
  wrong_slots.step_count = 1;
  wrong_slots.first_moment.resize(2);
  wrong_slots.second_moment.resize(2);
  EXPECT_FALSE(opt.ImportState(wrong_slots).ok());

  optim::AdamState wrong_shape = opt.ExportState();
  wrong_shape.first_moment[0] = Tensor::Zeros({3});
  EXPECT_FALSE(opt.ImportState(wrong_shape).ok());

  optim::AdamState half_defined = opt.ExportState();
  half_defined.second_moment[0] = Tensor();
  EXPECT_FALSE(opt.ImportState(half_defined).ok());

  optim::AdamState negative = opt.ExportState();
  negative.step_count = -1;
  EXPECT_FALSE(opt.ImportState(negative).ok());

  // Every rejected import left the optimizer untouched: it keeps stepping
  // in lockstep with the control.
  QuadraticStep(&opt, &w, target);
  QuadraticStep(&control, &w_control, target);
  ExpectValuesBitsEqual(w, w_control);
}

TEST(Adam, LazyMomentSlotsSurviveExportImport) {
  Variable used(Tensor::Scalar(1.0), true);
  Variable unused(Tensor::Scalar(5.0), true);
  optim::Adam opt({used, unused}, {.learning_rate = 0.1});
  Variable loss = ag::SumAll(used);
  opt.ZeroGrad();
  loss.Backward();
  opt.Step();

  const optim::AdamState state = opt.ExportState();
  EXPECT_TRUE(state.first_moment[0].defined());
  EXPECT_FALSE(state.first_moment[1].defined());  // Never received a grad.

  Variable used_b(used.value().Clone(), true);
  Variable unused_b(unused.value().Clone(), true);
  optim::Adam b({used_b, unused_b}, {.learning_rate = 0.1});
  ASSERT_TRUE(b.ImportState(state).ok());

  Variable loss_a = ag::SumAll(used);
  opt.ZeroGrad();
  loss_a.Backward();
  opt.Step();
  Variable loss_b = ag::SumAll(used_b);
  b.ZeroGrad();
  loss_b.Backward();
  b.Step();
  ExpectValuesBitsEqual(used, used_b);
  EXPECT_EQ(unused_b.value().item(), 5.0);
}

TEST(ClipGradNorm, RescalesOnlyWhenAboveThreshold) {
  Variable a(Tensor::FromVector({2}, {0.0, 0.0}), true);
  Variable loss = ag::SumAll(ag::MulScalar(a, 3.0));
  loss.Backward();  // grad = [3, 3], norm = sqrt(18) ~ 4.24
  const double before = optim::ClipGradNorm({a}, 1.0);
  EXPECT_NEAR(before, std::sqrt(18.0), 1e-9);
  EXPECT_NEAR(Norm(a.grad()), 1.0, 1e-6);

  // Below the threshold: untouched.
  a.ClearGrad();
  ag::SumAll(ag::MulScalar(a, 0.1)).Backward();
  optim::ClipGradNorm({a}, 10.0);
  EXPECT_NEAR(a.grad().data()[0], 0.1, 1e-12);
}

TEST(Schedules, ExponentialDecaysToFloor) {
  optim::ExponentialSchedule schedule(5.0, 0.9, 0.001);
  EXPECT_DOUBLE_EQ(schedule.At(0), 5.0);
  EXPECT_NEAR(schedule.At(1), 4.5, 1e-12);
  EXPECT_NEAR(schedule.At(2), 4.05, 1e-12);
  EXPECT_DOUBLE_EQ(schedule.At(1000), 0.001);  // Clamped at the floor.
  // Monotone decreasing.
  for (int e = 0; e < 50; ++e) EXPECT_GE(schedule.At(e), schedule.At(e + 1));
}

TEST(Schedules, CosineEndpoints) {
  optim::CosineSchedule schedule(1.0, 0.1, 10);
  EXPECT_NEAR(schedule.At(0), 1.0, 1e-12);
  EXPECT_NEAR(schedule.At(10), 0.1, 1e-12);
  EXPECT_NEAR(schedule.At(5), 0.55, 1e-12);  // Midpoint of cosine.
  EXPECT_NEAR(schedule.At(20), 0.1, 1e-12);  // Clamped after the horizon.
}

TEST(Optimizer, SetLearningRateTakesEffect) {
  Variable w(Tensor::Scalar(1.0), true);
  optim::Sgd opt({w}, {.learning_rate = 0.0});
  opt.SetLearningRate(0.5);
  Variable loss = ag::SumAll(w);
  opt.ZeroGrad();
  loss.Backward();
  opt.Step();
  EXPECT_NEAR(w.value().item(), 0.5, 1e-12);
}

TEST(Optimizer, TrainsATinyNetworkToFitXor) {
  // 2-4-1 MLP fits XOR; verifies end-to-end autograd + Adam integration.
  Rng rng(99);
  Variable w1(Tensor::Rand({2, 8}, &rng, -0.7, 0.7), true);
  Variable b1(Tensor::Zeros({8}), true);
  Variable w2(Tensor::Rand({8, 1}, &rng, -0.7, 0.7), true);
  Variable b2(Tensor::Zeros({1}), true);
  const Variable x(
      Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1}), false);
  const Variable y(Tensor::FromVector({4, 1}, {0, 1, 1, 0}), false);
  optim::Adam opt({w1, b1, w2, b2}, {.learning_rate = 0.05});
  double final_loss = 1.0;
  for (int step = 0; step < 800; ++step) {
    const Variable h = ag::Tanh(ag::Add(ag::MatMul(x, w1), b1));
    const Variable out = ag::Sigmoid(ag::Add(ag::MatMul(h, w2), b2));
    Variable loss = ag::MseLoss(out, y);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    final_loss = loss.value().item();
  }
  EXPECT_LT(final_loss, 0.01);
}

}  // namespace
}  // namespace autocts
