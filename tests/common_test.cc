#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/text_codec.h"

namespace autocts {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_DEATH(bad.value(), "");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-5.0, -1.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, -1.0);
  }
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, UniformIntIsUnbiasedAcrossBuckets) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, 500);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(17);
  const std::vector<int64_t> perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int64_t v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(TextCodec, RoundTripAllTypes) {
  TextWriter writer;
  writer.Add("name", "metr-la");
  writer.AddInt("nodes", 207);
  writer.AddDouble("fraction", 0.7);
  writer.Add("edge", "0 1 gdcc");
  writer.Add("edge", "1 2 dgcn");
  StatusOr<TextReader> reader = TextReader::Parse(writer.ToString());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Get("name").value(), "metr-la");
  EXPECT_EQ(reader.value().GetInt("nodes").value(), 207);
  EXPECT_DOUBLE_EQ(reader.value().GetDouble("fraction").value(), 0.7);
  EXPECT_EQ(reader.value().GetAll("edge").size(), 2u);
  EXPECT_EQ(reader.value().GetAll("edge")[1], "1 2 dgcn");
}

TEST(TextCodec, MissingKeyIsNotFound) {
  StatusOr<TextReader> reader = TextReader::Parse("a = 1\n");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Get("b").status().code(), StatusCode::kNotFound);
}

TEST(TextCodec, MalformedLineRejected) {
  EXPECT_FALSE(TextReader::Parse("no equals sign\n").ok());
  EXPECT_FALSE(TextReader::Parse("= empty key\n").ok());
}

TEST(TextCodec, CommentsAndBlankLinesIgnored) {
  StatusOr<TextReader> reader =
      TextReader::Parse("# comment\n\n  key =  value  \n");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Get("key").value(), "value");
}

TEST(TextCodec, NonNumericValueRejectedByTypedGetters) {
  StatusOr<TextReader> reader = TextReader::Parse("k = abc\n");
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().GetInt("k").ok());
  EXPECT_FALSE(reader.value().GetDouble("k").ok());
}

TEST(StringUtil, SplitAndStrip) {
  const std::vector<std::string> parts = SplitString(" a, b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(StripWhitespace("  x y \t"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  EXPECT_GE(watch.Seconds(), 0.0);
  EXPECT_GE(watch.Millis(), watch.Seconds() * 1000.0 - 1e-6);
  watch.Reset();
  EXPECT_LT(watch.Seconds(), 1.0);
}

TEST(Check, PassesAndFails) {
  AUTOCTS_CHECK(true) << "never printed";
  AUTOCTS_CHECK_EQ(2, 2);
  AUTOCTS_CHECK_LT(1, 2);
  EXPECT_DEATH(AUTOCTS_CHECK_EQ(1, 2) << "boom", "boom");
  EXPECT_DEATH(AUTOCTS_CHECK(false), "CHECK failed");
}

TEST(Logging, LevelsFilterMessages) {
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  AUTOCTS_LOG(INFO) << "should be suppressed";
  SetMinLogLevel(LogLevel::kInfo);
  AUTOCTS_LOG(INFO) << "visible (smoke)";
}

TEST(TextCodec, ExactDoubleRoundTripsBitPatterns) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      0.1,
      1.0 / 3.0,
      3.141592653589793,
      4.9406564584124654e-324,  // Smallest positive denormal.
      1e-310,                   // Subnormal.
      2.2250738585072014e-308,  // DBL_MIN.
      1.7976931348623157e308,   // DBL_MAX.
      -6.02214076e23,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  for (const double value : values) {
    const std::string text = FormatExactDouble(value);
    double parsed = 0.0;
    ASSERT_TRUE(ParseExactDouble(text, &parsed)) << text;
    uint64_t want = 0, got = 0;
    std::memcpy(&want, &value, sizeof(want));
    std::memcpy(&got, &parsed, sizeof(got));
    EXPECT_EQ(want, got) << value << " -> " << text << " -> " << parsed;
  }
  // Finite values serialize as hex-floats (exact images of the bits).
  EXPECT_EQ(FormatExactDouble(0.1).rfind("0x1.", 0), 0u);
}

TEST(TextCodec, ParseExactDoubleAcceptsDecimalAndRejectsJunk) {
  double parsed = 0.0;
  EXPECT_TRUE(ParseExactDouble("0.25", &parsed));  // Legacy decimal form.
  EXPECT_EQ(parsed, 0.25);
  EXPECT_TRUE(ParseExactDouble("-1.5e3", &parsed));
  EXPECT_EQ(parsed, -1500.0);
  EXPECT_FALSE(ParseExactDouble("", &parsed));
  EXPECT_FALSE(ParseExactDouble("abc", &parsed));
  EXPECT_FALSE(ParseExactDouble("1.5junk", &parsed));
  EXPECT_FALSE(ParseExactDouble("0x1.8p+1x", &parsed));
}

TEST(Crc32, MatchesKnownVectorsAndDetectsChanges) {
  // The standard CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  const std::string text = "param = w 1 2 0x1p+0 0x1p+1\n";
  const uint32_t crc = Crc32(text);
  for (size_t i = 0; i < text.size(); ++i) {
    std::string mutated = text;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_NE(Crc32(mutated), crc) << "flip at byte " << i;
  }
  EXPECT_NE(Crc32(text.substr(0, text.size() - 1)), crc);
}

TEST(FileIo, AtomicWriteRotatesGenerations) {
  const std::string path = testing::TempDir() + "common_test_atomic";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  ASSERT_TRUE(AtomicWriteFile(path, "one").ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".prev"));
  StatusOr<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "one");

  ASSERT_TRUE(AtomicWriteFile(path, "two").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "two");
  EXPECT_EQ(ReadFileToString(path + ".prev").value(), "one");

  ASSERT_TRUE(AtomicWriteFile(path, "three").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "three");
  EXPECT_EQ(ReadFileToString(path + ".prev").value(), "two");

  // keep_previous=false replaces in place without touching .prev.
  ASSERT_TRUE(AtomicWriteFile(path, "four", /*keep_previous=*/false).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "four");
  EXPECT_EQ(ReadFileToString(path + ".prev").value(), "two");

  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(FileIo, ReadMissingFileIsNotFound) {
  const StatusOr<std::string> result =
      ReadFileToString(testing::TempDir() + "common_test_never_written");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace autocts
