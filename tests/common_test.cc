#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/text_codec.h"

namespace autocts {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_DEATH(bad.value(), "");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-5.0, -1.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, -1.0);
  }
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, UniformIntIsUnbiasedAcrossBuckets) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, 500);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(17);
  const std::vector<int64_t> perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int64_t v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(TextCodec, RoundTripAllTypes) {
  TextWriter writer;
  writer.Add("name", "metr-la");
  writer.AddInt("nodes", 207);
  writer.AddDouble("fraction", 0.7);
  writer.Add("edge", "0 1 gdcc");
  writer.Add("edge", "1 2 dgcn");
  StatusOr<TextReader> reader = TextReader::Parse(writer.ToString());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Get("name").value(), "metr-la");
  EXPECT_EQ(reader.value().GetInt("nodes").value(), 207);
  EXPECT_DOUBLE_EQ(reader.value().GetDouble("fraction").value(), 0.7);
  EXPECT_EQ(reader.value().GetAll("edge").size(), 2u);
  EXPECT_EQ(reader.value().GetAll("edge")[1], "1 2 dgcn");
}

TEST(TextCodec, MissingKeyIsNotFound) {
  StatusOr<TextReader> reader = TextReader::Parse("a = 1\n");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Get("b").status().code(), StatusCode::kNotFound);
}

TEST(TextCodec, MalformedLineRejected) {
  EXPECT_FALSE(TextReader::Parse("no equals sign\n").ok());
  EXPECT_FALSE(TextReader::Parse("= empty key\n").ok());
}

TEST(TextCodec, CommentsAndBlankLinesIgnored) {
  StatusOr<TextReader> reader =
      TextReader::Parse("# comment\n\n  key =  value  \n");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Get("key").value(), "value");
}

TEST(TextCodec, NonNumericValueRejectedByTypedGetters) {
  StatusOr<TextReader> reader = TextReader::Parse("k = abc\n");
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().GetInt("k").ok());
  EXPECT_FALSE(reader.value().GetDouble("k").ok());
}

TEST(StringUtil, SplitAndStrip) {
  const std::vector<std::string> parts = SplitString(" a, b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(StripWhitespace("  x y \t"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  EXPECT_GE(watch.Seconds(), 0.0);
  EXPECT_GE(watch.Millis(), watch.Seconds() * 1000.0 - 1e-6);
  watch.Reset();
  EXPECT_LT(watch.Seconds(), 1.0);
}

TEST(Check, PassesAndFails) {
  AUTOCTS_CHECK(true) << "never printed";
  AUTOCTS_CHECK_EQ(2, 2);
  AUTOCTS_CHECK_LT(1, 2);
  EXPECT_DEATH(AUTOCTS_CHECK_EQ(1, 2) << "boom", "boom");
  EXPECT_DEATH(AUTOCTS_CHECK(false), "CHECK failed");
}

TEST(Logging, LevelsFilterMessages) {
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  AUTOCTS_LOG(INFO) << "should be suppressed";
  SetMinLogLevel(LogLevel::kInfo);
  AUTOCTS_LOG(INFO) << "visible (smoke)";
}

}  // namespace
}  // namespace autocts
