// Crash-safety suite for the search checkpoint subsystem:
//   * kill-point fault injection — abort the search after every checkpoint
//     boundary, resume, and require the bit-exact genotype / Theta / loss of
//     an uninterrupted run, under 1 and 4 threads;
//   * corruption rejection — truncations at every record boundary and
//     single-byte flips at every offset must load as a non-OK Status;
//   * previous-generation fallback — a corrupt newest checkpoint falls back
//     to "<path>.prev" and still reproduces the uninterrupted run;
//   * exact state-dict round-trips across the whole baseline model zoo.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/parallel.h"
#include "common/text_codec.h"
#include "core/search_checkpoint.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/state_dict.h"
#include "tensor/tensor_ops.h"
#include "testing/fixtures.h"

namespace autocts {
namespace {

using core::DecodeSearchCheckpoint;
using core::EncodeSearchCheckpoint;
using core::JointSearcher;
using core::LoadSearchCheckpoint;
using core::LoadSearchCheckpointOrPrev;
using core::SaveSearchCheckpoint;
using core::SearchCheckpoint;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;

// Thrown from the post-checkpoint hook to simulate a crash at a checkpoint
// boundary: it unwinds Search() right after the file hit the disk, which is
// exactly the state a killed process would leave behind.
struct KillSignal {};

PreparedData TinyData(uint64_t seed = 31) {
  return fixtures::TinyPreparedData(seed);
}

SearchOptions TinyOptions() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  return options;
}

// 2 epochs x 4 batches at checkpoint_every_n_batches=2 => 4 checkpoint
// boundaries, whose cursors are (0,2), (1,0), (1,2), (2,0).
constexpr int64_t kCheckpointEvery = 2;
constexpr int64_t kNumBoundaries = 4;

SearchOptions CheckpointedOptions(const std::string& path) {
  SearchOptions options = TinyOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_n_batches = kCheckpointEvery;
  return options;
}

std::string TempPath(const std::string& name) {
  return fixtures::TempPath("checkpoint_test", name);
}

void RemoveGenerations(const std::string& path) {
  fixtures::RemoveGenerations(path);
}

void ExpectTensorBitsEqual(const Tensor& a, const Tensor& b,
                           const std::string& label) {
  ASSERT_TRUE(a.defined() == b.defined()) << label;
  if (!a.defined()) return;
  ASSERT_EQ(a.shape(), b.shape()) << label;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(double)),
            0)
      << label << " differs bitwise";
}

void ExpectNamedTensorsBitsEqual(
    const std::vector<std::pair<std::string, Tensor>>& a,
    const std::vector<std::pair<std::string, Tensor>>& b,
    const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << label << " slot " << i;
    ExpectTensorBitsEqual(a[i].second, b[i].second, label + ":" + a[i].first);
  }
}

// Full-state bitwise comparison of two checkpoints (weights, Theta, Adam
// moments, Rng, orders, cursor, accumulators).
void ExpectCheckpointsBitsEqual(const SearchCheckpoint& a,
                                const SearchCheckpoint& b) {
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.tau, b.tau);
  EXPECT_EQ(a.val_loss_sum, b.val_loss_sum);
  EXPECT_EQ(a.epoch_steps, b.epoch_steps);
  EXPECT_EQ(a.final_validation_loss, b.final_validation_loss);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.rng.words[i], b.rng.words[i]);
  EXPECT_EQ(a.rng.has_cached_normal, b.rng.has_cached_normal);
  EXPECT_EQ(a.rng.cached_normal, b.rng.cached_normal);
  EXPECT_EQ(a.pseudo_train, b.pseudo_train);
  EXPECT_EQ(a.pseudo_val, b.pseudo_val);
  ExpectNamedTensorsBitsEqual(a.parameters, b.parameters, "param");
  ExpectNamedTensorsBitsEqual(a.arch_parameters, b.arch_parameters, "arch");
  EXPECT_EQ(a.weight_optimizer.step_count, b.weight_optimizer.step_count);
  EXPECT_EQ(a.theta_optimizer.step_count, b.theta_optimizer.step_count);
  ASSERT_EQ(a.weight_optimizer.first_moment.size(),
            b.weight_optimizer.first_moment.size());
  for (size_t i = 0; i < a.weight_optimizer.first_moment.size(); ++i) {
    ExpectTensorBitsEqual(a.weight_optimizer.first_moment[i],
                          b.weight_optimizer.first_moment[i], "adam_w_m");
    ExpectTensorBitsEqual(a.weight_optimizer.second_moment[i],
                          b.weight_optimizer.second_moment[i], "adam_w_v");
  }
  ASSERT_EQ(a.theta_optimizer.first_moment.size(),
            b.theta_optimizer.first_moment.size());
  for (size_t i = 0; i < a.theta_optimizer.first_moment.size(); ++i) {
    ExpectTensorBitsEqual(a.theta_optimizer.first_moment[i],
                          b.theta_optimizer.first_moment[i], "adam_t_m");
    ExpectTensorBitsEqual(a.theta_optimizer.second_moment[i],
                          b.theta_optimizer.second_moment[i], "adam_t_v");
  }
}

// A small hand-built checkpoint exercising pathological doubles (0.1, the
// smallest denormal, -0.0, huge magnitudes) and a lazy (undefined) Adam
// moment slot. Codec-level tests run on this instead of a real search
// snapshot so the byte-flip sweep can afford to cover every offset.
SearchCheckpoint MakeSyntheticCheckpoint() {
  SearchCheckpoint checkpoint;
  checkpoint.config_fingerprint = "synthetic fingerprint v1";
  checkpoint.epoch = 1;
  checkpoint.step = 2;
  checkpoint.tau = 4.5;
  checkpoint.val_loss_sum = 0.1;
  checkpoint.epoch_steps = 2;
  checkpoint.final_validation_loss = 1.0 / 3.0;
  Rng rng(7);
  (void)rng.Normal();  // Populate the cached Box-Muller half.
  checkpoint.rng = rng.GetState();
  checkpoint.pseudo_train = {3, 1, 2};
  checkpoint.pseudo_val = {0, 4};
  checkpoint.parameters.emplace_back(
      "layer.w", Tensor::FromVector({2, 2}, {0.1, -2.5, 4.9406564584124654e-324,
                                             3.0}));
  checkpoint.parameters.emplace_back(
      "layer.b", Tensor::FromVector({2}, {-0.0, 1e308}));
  checkpoint.arch_parameters.emplace_back(
      "cell0.alpha", Tensor::FromVector({3}, {0.25, 1.0 / 3.0, -0.1}));
  checkpoint.weight_optimizer.step_count = 5;
  checkpoint.weight_optimizer.first_moment = {
      Tensor::FromVector({2, 2}, {1e-9, -0.3, 0.0, 2.0}), Tensor()};
  checkpoint.weight_optimizer.second_moment = {
      Tensor::FromVector({2, 2}, {1e-18, 0.09, 0.0, 4.0}), Tensor()};
  checkpoint.theta_optimizer.step_count = 4;
  checkpoint.theta_optimizer.first_moment = {
      Tensor::FromVector({3}, {0.5, -0.25, 0.125})};
  checkpoint.theta_optimizer.second_moment = {
      Tensor::FromVector({3}, {0.25, 0.0625, 1.0 / 64.0})};
  return checkpoint;
}

// Re-seals a (possibly hand-edited) payload with a fresh valid CRC trailer,
// to test post-CRC validation paths in isolation.
std::string SealWithCrc(const std::string& payload) {
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "crc32 = %08x\n", Crc32(payload));
  return payload + trailer;
}

// ---------------------------------------------------------------------------
// Codec: round-trip and corruption rejection.
// ---------------------------------------------------------------------------

TEST(SearchCheckpointCodec, SyntheticRoundTripIsBitExact) {
  const SearchCheckpoint original = MakeSyntheticCheckpoint();
  const std::string text = EncodeSearchCheckpoint(original);
  StatusOr<SearchCheckpoint> decoded = DecodeSearchCheckpoint(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectCheckpointsBitsEqual(original, decoded.value());
  // Re-encoding the decoded state reproduces the identical byte stream.
  EXPECT_EQ(EncodeSearchCheckpoint(decoded.value()), text);
}

TEST(SearchCheckpointCodec, RejectsTruncationAtEveryRecordBoundary) {
  const std::string text =
      EncodeSearchCheckpoint(MakeSyntheticCheckpoint());
  int64_t boundaries = 0;
  for (size_t pos = 0; pos + 1 < text.size(); ++pos) {
    if (text[pos] != '\n') continue;
    ++boundaries;
    const std::string truncated = text.substr(0, pos + 1);
    EXPECT_FALSE(DecodeSearchCheckpoint(truncated).ok())
        << "truncation after record boundary at byte " << pos
        << " was not rejected";
  }
  EXPECT_GT(boundaries, 15);  // One per record line.
}

TEST(SearchCheckpointCodec, RejectsTruncationMidRecord) {
  const std::string text =
      EncodeSearchCheckpoint(MakeSyntheticCheckpoint());
  // Every proper prefix short of the final newline must fail to load; walk
  // a stride plus the extremes.
  for (size_t cut = 0; cut + 1 < text.size(); cut += 7) {
    EXPECT_FALSE(DecodeSearchCheckpoint(text.substr(0, cut)).ok())
        << "mid-record truncation at byte " << cut << " was not rejected";
  }
  EXPECT_FALSE(DecodeSearchCheckpoint("").ok());
}

TEST(SearchCheckpointCodec, RejectsEverySingleByteFlip) {
  const std::string text =
      EncodeSearchCheckpoint(MakeSyntheticCheckpoint());
  ASSERT_TRUE(DecodeSearchCheckpoint(text).ok());
  for (size_t pos = 0; pos < text.size(); ++pos) {
    std::string corrupted = text;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x01);
    EXPECT_FALSE(DecodeSearchCheckpoint(corrupted).ok())
        << "bit flip at byte " << pos << " ('" << text[pos]
        << "') was not rejected";
  }
  // A high-bit flip sweep at a stride for good measure.
  for (size_t pos = 0; pos < text.size(); pos += 13) {
    std::string corrupted = text;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x80);
    EXPECT_FALSE(DecodeSearchCheckpoint(corrupted).ok())
        << "high-bit flip at byte " << pos << " was not rejected";
  }
}

TEST(SearchCheckpointCodec, RejectsTrailingGarbageAfterTrailer) {
  const std::string text =
      EncodeSearchCheckpoint(MakeSyntheticCheckpoint());
  EXPECT_FALSE(DecodeSearchCheckpoint(text + "x").ok());
  EXPECT_FALSE(DecodeSearchCheckpoint(text + "extra = 1\n").ok());
}

TEST(SearchCheckpointCodec, RejectsForeignFormatsAndWrongVersion) {
  EXPECT_FALSE(DecodeSearchCheckpoint("hello world\n").ok());
  EXPECT_FALSE(
      DecodeSearchCheckpoint(SealWithCrc("format = not-a-checkpoint\n")).ok());
  // A structurally valid file from a hypothetical future version must be
  // refused even though its CRC is intact.
  std::string payload = EncodeSearchCheckpoint(MakeSyntheticCheckpoint());
  payload = payload.substr(0, payload.rfind("crc32 = "));
  const std::string marker = "version = 1\n";
  const size_t at = payload.find(marker);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, marker.size(), "version = 2\n");
  const StatusOr<SearchCheckpoint> result =
      DecodeSearchCheckpoint(SealWithCrc(payload));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("version"), std::string::npos);
}

TEST(SearchCheckpointCodec, RejectsInconsistentRecordCounts) {
  // param_count disagreeing with the number of param records must fail even
  // with a valid CRC (guards against logic bugs, not just bit rot).
  std::string payload = EncodeSearchCheckpoint(MakeSyntheticCheckpoint());
  payload = payload.substr(0, payload.rfind("crc32 = "));
  const std::string marker = "param_count = 2\n";
  const size_t at = payload.find(marker);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, marker.size(), "param_count = 3\n");
  EXPECT_FALSE(DecodeSearchCheckpoint(SealWithCrc(payload)).ok());
}

// ---------------------------------------------------------------------------
// Files: atomic generations and the .prev fallback.
// ---------------------------------------------------------------------------

TEST(SearchCheckpointFiles, SaveRotatesGenerationsAndLoadFallsBackToPrev) {
  const std::string path = TempPath("generations");
  RemoveGenerations(path);

  SearchCheckpoint first = MakeSyntheticCheckpoint();
  ASSERT_TRUE(SaveSearchCheckpoint(first, path).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".prev"));

  SearchCheckpoint second = first;
  second.epoch = 1;
  second.step = 3;
  ASSERT_TRUE(SaveSearchCheckpoint(second, path).ok());
  ASSERT_TRUE(FileExists(path + ".prev"));

  bool used_prev = true;
  StatusOr<SearchCheckpoint> loaded = LoadSearchCheckpointOrPrev(path, &used_prev);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(used_prev);
  EXPECT_EQ(loaded.value().step, 3);

  // Corrupt the newest generation: the previous one must load instead.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not a checkpoint";
  }
  loaded = LoadSearchCheckpointOrPrev(path, &used_prev);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(used_prev);
  ExpectCheckpointsBitsEqual(first, loaded.value());

  // Newest generation missing entirely: still served from .prev.
  std::remove(path.c_str());
  loaded = LoadSearchCheckpointOrPrev(path, &used_prev);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(used_prev);

  // Both generations gone: a clean non-OK Status, never a crash.
  RemoveGenerations(path);
  EXPECT_FALSE(LoadSearchCheckpointOrPrev(path, &used_prev).ok());
  EXPECT_FALSE(LoadSearchCheckpoint(path).ok());
}

// ---------------------------------------------------------------------------
// Searcher: kill-point fault injection.
// ---------------------------------------------------------------------------

TEST(SearcherCheckpoint, CheckpointingDoesNotPerturbTheSearch) {
  const PreparedData data = TinyData();
  const SearchResult plain = JointSearcher(TinyOptions()).Search(data);

  const std::string path = TempPath("unperturbed");
  RemoveGenerations(path);
  const SearchResult checkpointed =
      JointSearcher(CheckpointedOptions(path)).Search(data);

  EXPECT_EQ(plain.genotype, checkpointed.genotype);
  EXPECT_EQ(plain.final_validation_loss, checkpointed.final_validation_loss);
  RemoveGenerations(path);
}

TEST(SearcherCheckpoint, KillAtEveryBoundaryThenResumeIsBitIdentical) {
  const PreparedData data = TinyData();
  std::string genotype_across_threads;
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));

    // Uninterrupted reference run (with checkpointing on, so its final
    // checkpoint file provides the reference alpha/beta/gamma bits).
    const std::string base_path =
        TempPath("baseline_t" + std::to_string(threads));
    RemoveGenerations(base_path);
    int64_t boundaries_seen = 0;
    SearchOptions base_options = CheckpointedOptions(base_path);
    base_options.post_checkpoint_hook = [&](int64_t ordinal,
                                            const std::string&) {
      boundaries_seen = ordinal + 1;
    };
    const SearchResult baseline = JointSearcher(base_options).Search(data);
    ASSERT_EQ(boundaries_seen, kNumBoundaries);
    StatusOr<SearchCheckpoint> base_final = LoadSearchCheckpoint(base_path);
    ASSERT_TRUE(base_final.ok()) << base_final.status().ToString();
    EXPECT_EQ(base_final.value().epoch, TinyOptions().epochs);
    EXPECT_EQ(base_final.value().step, 0);

    // The searched architecture itself must not depend on the thread count.
    if (genotype_across_threads.empty()) {
      genotype_across_threads = baseline.genotype.ToText();
    } else {
      EXPECT_EQ(genotype_across_threads, baseline.genotype.ToText());
    }

    // Kill after each boundary in turn, resume, compare everything.
    for (int64_t kill = 0; kill < kNumBoundaries; ++kill) {
      SCOPED_TRACE("kill after checkpoint #" + std::to_string(kill));
      const std::string path = TempPath("kill" + std::to_string(kill) + "_t" +
                                        std::to_string(threads));
      RemoveGenerations(path);

      SearchOptions killed_options = CheckpointedOptions(path);
      killed_options.post_checkpoint_hook = [&](int64_t ordinal,
                                                const std::string&) {
        if (ordinal == kill) throw KillSignal{};
      };
      bool killed = false;
      try {
        JointSearcher(killed_options).Search(data);
      } catch (const KillSignal&) {
        killed = true;
      }
      ASSERT_TRUE(killed);

      SearchOptions resume_options = CheckpointedOptions(path);
      resume_options.resume = true;
      const SearchResult resumed =
          JointSearcher(resume_options).Search(data);

      EXPECT_EQ(resumed.genotype, baseline.genotype);
      EXPECT_EQ(resumed.final_validation_loss,
                baseline.final_validation_loss);

      // The final checkpoint of the resumed trajectory carries the same
      // bits — weights, alpha/beta/gamma, Adam moments, Rng — as the
      // uninterrupted run's.
      StatusOr<SearchCheckpoint> resumed_final = LoadSearchCheckpoint(path);
      ASSERT_TRUE(resumed_final.ok()) << resumed_final.status().ToString();
      ExpectCheckpointsBitsEqual(base_final.value(), resumed_final.value());
      RemoveGenerations(path);
    }
    RemoveGenerations(base_path);
  }
  SetNumThreads(1);
}

TEST(SearcherCheckpoint, PrevFallbackRecoversWhenNewestGenerationIsCorrupt) {
  const PreparedData data = TinyData();
  const std::string base_path = TempPath("prev_baseline");
  RemoveGenerations(base_path);
  const SearchResult baseline =
      JointSearcher(CheckpointedOptions(base_path)).Search(data);

  // Kill after the third checkpoint so two generations exist on disk
  // (main = boundary #2, .prev = boundary #1), then corrupt the newest.
  const std::string path = TempPath("prev_fallback");
  RemoveGenerations(path);
  SearchOptions killed_options = CheckpointedOptions(path);
  killed_options.post_checkpoint_hook = [](int64_t ordinal,
                                           const std::string&) {
    if (ordinal == 2) throw KillSignal{};
  };
  bool killed = false;
  try {
    JointSearcher(killed_options).Search(data);
  } catch (const KillSignal&) {
    killed = true;
  }
  ASSERT_TRUE(killed);
  ASSERT_TRUE(FileExists(path));
  ASSERT_TRUE(FileExists(path + ".prev"));
  {
    // Truncate the newest generation in half: unloadable, CRC gone.
    StatusOr<std::string> content = ReadFileToString(path);
    ASSERT_TRUE(content.ok());
    std::ofstream out(path, std::ios::trunc);
    out << content.value().substr(0, content.value().size() / 2);
  }
  ASSERT_FALSE(LoadSearchCheckpoint(path).ok());

  SearchOptions resume_options = CheckpointedOptions(path);
  resume_options.resume = true;
  const SearchResult resumed = JointSearcher(resume_options).Search(data);
  EXPECT_EQ(resumed.genotype, baseline.genotype);
  EXPECT_EQ(resumed.final_validation_loss, baseline.final_validation_loss);
  RemoveGenerations(path);
  RemoveGenerations(base_path);
}

TEST(SearcherCheckpoint, MismatchedConfigOrMissingFileStartsFresh) {
  const PreparedData data = TinyData();

  // Resume pointed at a file that does not exist: plain fresh run.
  const std::string missing = TempPath("never_written");
  RemoveGenerations(missing);
  SearchOptions fresh_options = CheckpointedOptions(missing);
  fresh_options.resume = true;
  const SearchResult from_missing =
      JointSearcher(fresh_options).Search(data);
  const SearchResult plain = JointSearcher(TinyOptions()).Search(data);
  EXPECT_EQ(from_missing.genotype, plain.genotype);
  RemoveGenerations(missing);

  // Resume from a checkpoint written under a different configuration: the
  // fingerprint mismatch is detected and the run starts fresh instead of
  // restoring foreign state.
  const std::string path = TempPath("config_mismatch");
  RemoveGenerations(path);
  (void)JointSearcher(CheckpointedOptions(path)).Search(data);
  ASSERT_TRUE(FileExists(path));

  SearchOptions other = CheckpointedOptions(path);
  other.seed = 1234;  // Part of the fingerprint.
  other.resume = true;
  const SearchResult resumed_other = JointSearcher(other).Search(data);
  SearchOptions other_plain = TinyOptions();
  other_plain.seed = 1234;
  const SearchResult fresh_other = JointSearcher(other_plain).Search(data);
  EXPECT_EQ(resumed_other.genotype, fresh_other.genotype);
  EXPECT_EQ(resumed_other.final_validation_loss,
            fresh_other.final_validation_loss);
  RemoveGenerations(path);
}

// ---------------------------------------------------------------------------
// State-dict round-trips.
// ---------------------------------------------------------------------------

TEST(StateDictZoo, RoundTripsEveryBaselineBitIdentically) {
  const PreparedData data = TinyData();
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = data.window.input_length;
  context.output_length = data.window.output_length;
  context.hidden_dim = 8;
  context.adjacency = data.adjacency;

  Rng rng(17);
  const Tensor x = Tensor::Rand(
      {2, context.input_length, context.num_nodes, context.in_features}, &rng,
      -1.0, 1.0);

  for (const std::string& name : models::AllBaselineNames()) {
    SCOPED_TRACE(name);
    context.seed = 5;
    models::ForecastingModelPtr original = models::CreateBaseline(name, context);
    context.seed = 99;  // Different init: the load must overwrite all of it.
    models::ForecastingModelPtr reloaded = models::CreateBaseline(name, context);

    const std::string text = nn::SaveStateDict(*original);
    EXPECT_NE(text, nn::SaveStateDict(*reloaded));
    const Status status = nn::LoadStateDict(reloaded.get(), text);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(text, nn::SaveStateDict(*reloaded));

    original->SetTraining(false);
    reloaded->SetTraining(false);
    const Variable input(x, false);
    const Tensor out_a = original->Forward(input).value();
    const Tensor out_b = reloaded->Forward(input).value();
    ExpectTensorBitsEqual(out_a, out_b, name + " forward");
  }
}

// Regression for the old 17-significant-digit decimal writer: values like
// 0.1 and denormals must survive a save/load cycle bit-for-bit.
class ProbeModule : public nn::Module {
 public:
  explicit ProbeModule(const std::vector<double>& values)
      : weights_(RegisterParameter(
            "w", Tensor::FromVector({static_cast<int64_t>(values.size())},
                                    values))) {}
  Variable weights_;
};

TEST(StateDict, PathologicalDoublesRoundTripBitIdentically) {
  const std::vector<double> values = {
      0.1,
      1.0 / 3.0,
      -0.0,
      4.9406564584124654e-324,  // Smallest positive denormal.
      2.2250738585072014e-308,  // DBL_MIN.
      1e-310,                   // Subnormal range.
      1.7976931348623157e308,   // DBL_MAX.
      -123456.789,
  };
  ProbeModule original(values);
  const std::string text = nn::SaveStateDict(original);
  // The writer must use the exact hex-float form, not rounded decimals.
  EXPECT_NE(text.find("0x1."), std::string::npos);

  ProbeModule reloaded(std::vector<double>(values.size(), 0.0));
  const Status status = nn::LoadStateDict(&reloaded, text);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const Tensor& restored = reloaded.weights_.value();
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t want = 0, got = 0;
    std::memcpy(&want, &values[i], sizeof(want));
    std::memcpy(&got, &restored.data()[i], sizeof(got));
    EXPECT_EQ(want, got) << "value " << values[i] << " at index " << i;
  }
}

TEST(StateDict, LoaderStillAcceptsLegacyDecimalFiles) {
  ProbeModule reloaded({0.0, 0.0});
  const Status status =
      nn::LoadStateDict(&reloaded, "param = w 1 2 0.25 -1.5\n");
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reloaded.weights_.value().data()[0], 0.25);
  EXPECT_EQ(reloaded.weights_.value().data()[1], -1.5);
}

}  // namespace
}  // namespace autocts
