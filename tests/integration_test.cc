// End-to-end pipeline tests: dataset generation -> preparation -> joint
// search (Algorithm 1) -> architecture evaluation -> metrics, mirroring the
// two-stage protocol of Section 3.4 at miniature scale.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

TEST(Integration, FullAutoCtsPipelineBeatsNaiveBaseline) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 5;
  config.num_steps = 500;
  config.seed = 41;
  data::WindowSpec window;
  window.input_length = 8;
  window.output_length = 4;
  const models::PreparedData data = models::PrepareData(
      data::GenerateTrafficSpeed(config), window, 0.7, 0.1);

  // Stage 1: architecture search.
  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.epochs = 2;
  options.batch_size = 16;
  options.max_batches_per_epoch = 8;
  const core::SearchResult search =
      core::JointSearcher(options).Search(data);
  ASSERT_TRUE(search.genotype.Validate().ok());

  // Stage 2: train the derived architecture from scratch.
  models::TrainConfig train_config;
  train_config.epochs = 5;
  train_config.batch_size = 16;
  const models::EvalResult eval =
      core::EvaluateGenotype(search.genotype, data, 8, train_config);

  // The searched model must beat the training-mean predictor by a margin.
  std::unique_ptr<core::DerivedModel> probe =
      core::BuildDerivedModel(search.genotype, data, 8, 1);
  Tensor predictions, truths;
  models::Predict(probe.get(), data, data.test(), 16, &predictions, &truths);
  const double naive_mae =
      metrics::ComputeMetrics(
          Tensor::Full(truths.shape(), data.scaler.mean(0)), truths)
          .mae;
  EXPECT_LT(eval.average.mae, naive_mae * 0.9)
      << "searched " << eval.average.mae << " vs naive " << naive_mae;
}

TEST(Integration, SingleStepPipelineOnSolarData) {
  data::SolarConfig config;
  config.num_nodes = 5;
  config.num_steps = 6 * 144;
  data::WindowSpec window;
  window.input_length = 24;  // Scaled-down analogue of the 168-step window.
  window.output_length = 1;
  window.horizon = 3;
  const models::PreparedData data =
      models::PrepareData(data::GenerateSolar(config), window, 0.6, 0.2);

  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = window.input_length;
  context.output_length = 1;
  context.hidden_dim = 8;
  context.seed = 5;
  models::ForecastingModelPtr model =
      models::CreateBaseline("LSTNet", context);
  models::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 16;
  train_config.max_batches_per_epoch = 20;
  const models::EvalResult eval =
      models::TrainAndEvaluate(model.get(), data, train_config);
  // RRSE < 1 means better than predicting the mean; CORR positive means it
  // tracks the diurnal pattern.
  EXPECT_LT(eval.rrse, 1.0);
  EXPECT_GT(eval.corr, 0.3);
}

TEST(Integration, GenotypePersistsAndReloadsIdentically) {
  data::TrafficFlowConfig config;
  config.num_nodes = 4;
  config.num_steps = 250;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  const models::PreparedData data = models::PrepareData(
      data::GenerateTrafficFlow(config), window, 0.6, 0.2);
  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.epochs = 1;
  options.batch_size = 8;
  options.max_batches_per_epoch = 3;
  const core::SearchResult search =
      core::JointSearcher(options).Search(data);

  // Persist -> reload -> same architecture, same (seeded) model outputs.
  StatusOr<core::Genotype> reloaded =
      core::Genotype::FromText(search.genotype.ToText());
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded.value(), search.genotype);

  std::unique_ptr<core::DerivedModel> model_a =
      core::BuildDerivedModel(search.genotype, data, 8, 9);
  std::unique_ptr<core::DerivedModel> model_b =
      core::BuildDerivedModel(reloaded.value(), data, 8, 9);
  model_a->SetTraining(false);
  model_b->SetTraining(false);
  Tensor x, y;
  data.test().GetBatch({0, 1}, &x, &y);
  EXPECT_TRUE(model_a->Forward(ag::Constant(x))
                  .value()
                  .AllClose(model_b->Forward(ag::Constant(x)).value(),
                            1e-12));
}

}  // namespace
}  // namespace autocts
