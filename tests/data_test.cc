#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "data/csv.h"
#include "data/cts_dataset.h"
#include "data/scaler.h"
#include "data/synthetic/generators.h"
#include "data/window_dataset.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

using data::CtsDataset;
using data::StandardScaler;
using data::WindowDataset;
using data::WindowSpec;

Tensor SequentialValues(int64_t steps, int64_t nodes, int64_t features) {
  Tensor values({steps, nodes, features});
  for (int64_t i = 0; i < values.size(); ++i) {
    values.data()[i] = static_cast<double>(i);
  }
  return values;
}

TEST(Split, ChronologicalFractionsAndOrder) {
  const Tensor values = SequentialValues(100, 2, 1);
  const data::DataSplit split = data::ChronologicalSplit(values, 0.7, 0.1);
  EXPECT_EQ(split.train.dim(0), 70);
  EXPECT_EQ(split.validation.dim(0), 10);
  EXPECT_EQ(split.test.dim(0), 20);
  // Chronological: validation starts exactly where train ends.
  EXPECT_EQ(split.validation.At({0, 0, 0}), split.train.At({69, 1, 0}) + 1.0);
  EXPECT_EQ(split.test.At({0, 0, 0}), 80.0 * 2.0);
}

TEST(Split, PemsRatio) {
  const data::DataSplit split =
      data::ChronologicalSplit(SequentialValues(100, 1, 1), 0.6, 0.2);
  EXPECT_EQ(split.train.dim(0), 60);
  EXPECT_EQ(split.validation.dim(0), 20);
  EXPECT_EQ(split.test.dim(0), 20);
}

TEST(Split, InvalidFractionsDie) {
  const Tensor values = SequentialValues(10, 1, 1);
  EXPECT_DEATH(data::ChronologicalSplit(values, 0.9, 0.2), "");
  EXPECT_DEATH(data::ChronologicalSplit(values, 0.0, 0.2), "");
}

TEST(Scaler, TransformIsZeroMeanUnitVariance) {
  Rng rng(1);
  Tensor values = Tensor::Rand({50, 4, 2}, &rng, 10.0, 20.0);
  StandardScaler scaler;
  scaler.Fit(values);
  const Tensor normalized = scaler.Transform(values);
  for (int64_t f = 0; f < 2; ++f) {
    double mean = 0.0;
    for (int64_t r = 0; r < 50 * 4; ++r) mean += normalized.data()[r * 2 + f];
    EXPECT_NEAR(mean / (50 * 4), 0.0, 1e-9);
  }
}

TEST(Scaler, RoundTripThroughInverse) {
  Rng rng(2);
  Tensor values = Tensor::Rand({30, 3, 1}, &rng, -5.0, 5.0);
  StandardScaler scaler;
  scaler.Fit(values);
  const Tensor normalized = scaler.Transform(values);
  const Tensor restored = scaler.InverseTransformFeature(normalized, 0);
  EXPECT_TRUE(restored.AllClose(values, 1e-9));
}

TEST(Scaler, MaskedFitIgnoresZeroReadings) {
  // Half the readings are zeros (failed sensors); masked stats must match
  // the clean half.
  Tensor values({10, 1, 1});
  for (int64_t t = 0; t < 10; ++t) {
    values.At({t, 0, 0}) = (t % 2 == 0) ? 60.0 : 0.0;
  }
  StandardScaler masked;
  masked.Fit(values, /*mask_null=*/true);
  EXPECT_NEAR(masked.mean(0), 60.0, 1e-9);
  StandardScaler unmasked;
  unmasked.Fit(values, /*mask_null=*/false);
  EXPECT_NEAR(unmasked.mean(0), 30.0, 1e-9);
}

TEST(Windows, MultiStepCountsAndContents) {
  const Tensor values = SequentialValues(30, 2, 1);
  WindowSpec spec;
  spec.input_length = 12;
  spec.output_length = 12;
  WindowDataset windows(values, spec);
  EXPECT_EQ(windows.NumSamples(), 30 - 12 - 12 + 1);
  Tensor x, y;
  windows.GetBatch({0, 3}, &x, &y);
  EXPECT_EQ(x.shape(), (Shape{2, 12, 2, 1}));
  EXPECT_EQ(y.shape(), (Shape{2, 12, 2, 1}));
  // Sample 0: x covers t=0..11, y covers t=12..23.
  EXPECT_EQ(x.At({0, 0, 0, 0}), 0.0);
  EXPECT_EQ(x.At({0, 11, 1, 0}), 23.0);
  EXPECT_EQ(y.At({0, 0, 0, 0}), 24.0);
  // Sample 3 is shifted by 3 frames (frame = nodes * features = 2).
  EXPECT_EQ(x.At({1, 0, 0, 0}), 6.0);
}

TEST(Windows, SingleStepHorizonSelectsExactStep) {
  const Tensor values = SequentialValues(40, 1, 1);
  WindowSpec spec;
  spec.input_length = 10;
  spec.output_length = 1;
  spec.horizon = 3;
  WindowDataset windows(values, spec);
  EXPECT_EQ(windows.NumSamples(), 40 - 10 - 3 + 1);
  Tensor x, y;
  windows.GetBatch({0}, &x, &y);
  // Input covers t=0..9; the target is t = 10 + 3 - 1 = 12.
  EXPECT_EQ(y.At({0, 0, 0, 0}), 12.0);
}

TEST(Windows, TargetFeatureSelection) {
  Tensor values = SequentialValues(20, 1, 2);
  WindowSpec spec;
  spec.input_length = 4;
  spec.output_length = 2;
  spec.target_feature = 1;
  WindowDataset windows(values, spec);
  Tensor x, y;
  windows.GetBatch({0}, &x, &y);
  // Feature 1 at t=4 is element 4*2+1.
  EXPECT_EQ(y.At({0, 0, 0, 0}), 9.0);
  // Inputs keep both features.
  EXPECT_EQ(x.dim(3), 2);
}

TEST(Windows, EpochBatchesCoverEverySampleOnce) {
  const Tensor values = SequentialValues(60, 1, 1);
  WindowSpec spec;
  spec.input_length = 5;
  spec.output_length = 5;
  WindowDataset windows(values, spec);
  Rng rng(3);
  const auto batches = windows.EpochBatches(8, &rng);
  std::vector<int> seen(windows.NumSamples(), 0);
  for (const auto& batch : batches) {
    EXPECT_LE(static_cast<int64_t>(batch.size()), 8);
    for (int64_t index : batch) ++seen[index];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(Windows, SingleStepRequiresUnitOutput) {
  WindowSpec spec;
  spec.horizon = 3;
  spec.output_length = 2;
  EXPECT_DEATH(WindowDataset(SequentialValues(30, 1, 1), spec), "");
}

// ---------------------------------------------------------------------------
// Synthetic generators.
// ---------------------------------------------------------------------------

TEST(TrafficSpeed, ShapeGraphAndValueRanges) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 8;
  config.num_steps = 600;
  const CtsDataset dataset = data::GenerateTrafficSpeed(config);
  EXPECT_EQ(dataset.values.shape(), (Shape{600, 8, 2}));
  ASSERT_TRUE(dataset.adjacency.defined());
  EXPECT_EQ(dataset.adjacency.shape(), (Shape{8, 8}));
  EXPECT_GE(MinAll(dataset.values), 0.0);
  // Speeds stay below ~freeflow + noise.
  EXPECT_LT(MaxAll(Slice(dataset.values, 2, 0, 1)), 90.0);
  // Graph has some edges.
  EXPECT_GT(SumAll(dataset.adjacency), 0.0);
}

TEST(TrafficSpeed, DeterministicPerSeedAndDiurnal) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 2 * config.steps_per_day;
  const CtsDataset a = data::GenerateTrafficSpeed(config);
  const CtsDataset b = data::GenerateTrafficSpeed(config);
  EXPECT_TRUE(a.values.AllClose(b.values));
  config.seed = 99;
  const CtsDataset c = data::GenerateTrafficSpeed(config);
  EXPECT_FALSE(a.values.AllClose(c.values, 1e-6));
  // Rush hour (17:30) is slower on average than night (03:00).
  const int64_t night = 3 * 288 / 24;
  const int64_t rush = 17 * 288 / 24 + 6;
  double night_speed = 0.0;
  double rush_speed = 0.0;
  for (int64_t n = 0; n < 4; ++n) {
    night_speed += a.values.At({night, n, 0});
    rush_speed += a.values.At({rush, n, 0});
  }
  EXPECT_GT(night_speed, rush_speed + 1.0);
}

TEST(TrafficSpeed, ContainsMissingReadings) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 10;
  config.num_steps = 1000;
  config.missing_rate = 0.01;
  const CtsDataset dataset = data::GenerateTrafficSpeed(config);
  int64_t zeros = 0;
  for (int64_t t = 0; t < 1000; ++t) {
    for (int64_t n = 0; n < 10; ++n) {
      if (dataset.values.At({t, n, 0}) == 0.0) ++zeros;
    }
  }
  EXPECT_GT(zeros, 20);  // ~100 expected.
  EXPECT_LT(zeros, 400);
}

TEST(TrafficSpeed, TimeOfDayFeatureIsPeriodic) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 2;
  config.num_steps = 600;
  const CtsDataset dataset = data::GenerateTrafficSpeed(config);
  EXPECT_EQ(dataset.values.At({0, 0, 1}), 0.0);
  EXPECT_NEAR(dataset.values.At({288, 0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(dataset.values.At({144, 1, 1}), 0.5, 1e-12);
}

TEST(TrafficFlow, NonNegativeWithWeeklyPattern) {
  data::TrafficFlowConfig config;
  config.num_nodes = 6;
  config.num_steps = 7 * 288;
  const CtsDataset dataset = data::GenerateTrafficFlow(config);
  EXPECT_EQ(dataset.values.shape(), (Shape{7 * 288, 6, 1}));
  EXPECT_GE(MinAll(dataset.values), 0.0);
  // Weekday morning rush is busier than weekend morning rush.
  const int64_t rush_offset = 8 * 288 / 24 + 6;
  double weekday = 0.0;
  double weekend = 0.0;
  for (int64_t n = 0; n < 6; ++n) {
    weekday += dataset.values.At({0 * 288 + rush_offset, n, 0});  // Monday
    weekend += dataset.values.At({5 * 288 + rush_offset, n, 0});  // Saturday
  }
  EXPECT_GT(weekday, weekend);
}

TEST(Solar, ZeroAtNightPositiveAtNoon) {
  data::SolarConfig config;
  config.num_nodes = 5;
  config.num_steps = 3 * 144;
  const CtsDataset dataset = data::GenerateSolar(config);
  EXPECT_FALSE(dataset.adjacency.defined());  // No predefined graph.
  for (int64_t day = 0; day < 3; ++day) {
    for (int64_t n = 0; n < 5; ++n) {
      // Midnight and 3am are strictly zero.
      EXPECT_EQ(dataset.values.At({day * 144, n, 0}), 0.0);
      EXPECT_EQ(dataset.values.At({day * 144 + 18, n, 0}), 0.0);
      // Noon is positive.
      EXPECT_GT(dataset.values.At({day * 144 + 72, n, 0}), 0.0);
    }
  }
}

TEST(Electricity, PositiveLoadsWithEveningPeakForResidential) {
  data::ElectricityConfig config;
  config.num_nodes = 12;
  config.num_steps = 14 * 24;
  const CtsDataset dataset = data::GenerateElectricity(config);
  EXPECT_FALSE(dataset.adjacency.defined());
  EXPECT_GE(MinAll(dataset.values), 0.0);
  // Average 19:00 load exceeds average 03:00 load across clients/days.
  double evening = 0.0;
  double night = 0.0;
  for (int64_t day = 0; day < 14; ++day) {
    for (int64_t n = 0; n < 12; ++n) {
      evening += dataset.values.At({day * 24 + 19, n, 0});
      night += dataset.values.At({day * 24 + 3, n, 0});
    }
  }
  EXPECT_GT(evening, night);
}

TEST(Csv, SaveLoadRoundTrip) {
  Rng rng(4);
  const Tensor matrix = Tensor::Rand({7, 3}, &rng, -10.0, 10.0);
  const std::string path = ::testing::TempDir() + "/autocts_csv_test.csv";
  ASSERT_TRUE(data::SaveMatrixCsv(path, matrix).ok());
  StatusOr<Tensor> loaded = data::LoadMatrixCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().AllClose(matrix, 1e-9));
  std::remove(path.c_str());
}

TEST(Csv, ErrorsAreStatusesNotCrashes) {
  EXPECT_EQ(data::LoadMatrixCsv("/nonexistent/file.csv").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(data::SaveMatrixCsv("/nonexistent/dir/file.csv",
                                   Tensor::Zeros({1, 1}))
                   .ok());
  EXPECT_FALSE(
      data::SaveMatrixCsv(::testing::TempDir() + "/x.csv", Tensor::Zeros({2}))
          .ok());
  const std::string ragged_path = ::testing::TempDir() + "/ragged.csv";
  FILE* f = std::fopen(ragged_path.c_str(), "w");
  std::fputs("1,2\n3\n", f);
  std::fclose(f);
  EXPECT_FALSE(data::LoadMatrixCsv(ragged_path).ok());
  std::remove(ragged_path.c_str());
}

namespace {
// Writes a throwaway CSV fixture and returns the load status message.
Status LoadCsvFixture(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs(content.c_str(), f);
  std::fclose(f);
  const Status status = data::LoadMatrixCsv(path).status();
  std::remove(path.c_str());
  return status;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}
}  // namespace

TEST(Csv, RaggedRowNamesFileAndLine) {
  const Status status =
      LoadCsvFixture("ragged_line.csv", "1,2,3\n4,5,6\n7,8\n9,10,11\n");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "ragged_line.csv:3"))
      << status.message();
  EXPECT_TRUE(Contains(status.message(), "expected 3 columns, got 2"))
      << status.message();
}

TEST(Csv, BlankLinesDoNotShiftReportedLineNumbers) {
  const Status status =
      LoadCsvFixture("blank_lines.csv", "1,2\n\n\n3,4\n5\n");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The bad row is physical line 5 (two blank lines are counted, not rows).
  EXPECT_TRUE(Contains(status.message(), "blank_lines.csv:5"))
      << status.message();
}

TEST(Csv, NonNumericCellNamesLineAndColumn) {
  const Status status =
      LoadCsvFixture("garbage.csv", "1,2,3\n4,oops,6\n");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "garbage.csv:2")) << status.message();
  EXPECT_TRUE(Contains(status.message(), "column 2")) << status.message();
  EXPECT_TRUE(Contains(status.message(), "\"oops\"")) << status.message();
}

TEST(Csv, TrailingGarbageAfterNumberIsRejected) {
  const Status status = LoadCsvFixture("suffix.csv", "1,2\n3,1.5abc\n");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "suffix.csv:2")) << status.message();
  EXPECT_TRUE(Contains(status.message(), "1.5abc")) << status.message();
}

TEST(Csv, EmptyCellIsRejected) {
  const Status status = LoadCsvFixture("empty_cell.csv", "1,2\n3,\n");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "empty_cell.csv:2"))
      << status.message();
  EXPECT_TRUE(Contains(status.message(), "column 2")) << status.message();
}

TEST(Csv, TruncatedFileWithOnlyBlankLinesIsEmpty) {
  const Status status = LoadCsvFixture("blanks_only.csv", "\n\n  \n");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "empty CSV")) << status.message();
}

TEST(Csv, MissingFileNamesErrno) {
  const Status status =
      data::LoadMatrixCsv("/nonexistent/dir/file.csv").status();
  ASSERT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Contains(status.message(), "No such file")) << status.message();
}

TEST(Csv, ScientificNotationAndWhitespaceStillParse) {
  const std::string path = ::testing::TempDir() + "/sci.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1e3, -2.5E-2\n  4 ,5\n", f);
  std::fclose(f);
  StatusOr<Tensor> loaded = data::LoadMatrixCsv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded.value().At({0, 0}), 1000.0);
  EXPECT_DOUBLE_EQ(loaded.value().At({0, 1}), -0.025);
  EXPECT_DOUBLE_EQ(loaded.value().At({1, 0}), 4.0);
}

}  // namespace
}  // namespace autocts
