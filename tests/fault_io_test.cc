// Injected-I/O-failure sweeps for the resilience layer (common/fault.h +
// common/file_io.h) and its checkpoint/metrics call sites:
//   * fault-plan grammar — parse/format round-trips and rejection of
//     malformed specs;
//   * deterministic retry — exact backoff sequences via a recorder sleeper,
//     retry-then-succeed, non-retryable short-circuit, budget exhaustion;
//   * AtomicWriteFile under ENOSPC / EIO / SHORT / rename failure at both
//     the rotate and publish steps — the target and ".prev" generations are
//     never torn, the temp file is cleaned up, and a failed publish rolls
//     the rotation back;
//   * search and eval checkpointing under a fault plan — a transient
//     failure is retried per policy (io/retries counters), a persistent one
//     degrades to a warning without killing the run, and every surviving
//     checkpoint stays CRC/codec-valid.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "core/eval_scheduler.h"
#include "core/search_checkpoint.h"
#include "core/search_metrics.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"

namespace autocts {
namespace {

using core::EvalScheduler;
using core::EvalSchedulerOptions;
using core::Genotype;
using core::JointSearcher;
using core::LoadSearchCheckpoint;
using core::LoadSearchCheckpointOrPrev;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveGenerations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".prev").c_str());
}

std::string ReadAll(const std::string& path) {
  StatusOr<std::string> content = ReadFileToString(path);
  AUTOCTS_CHECK(content.ok());
  return content.value();
}

// Retry policy that never blocks the test: backoff sleeps are recorded
// instead of slept.
fault::RetryPolicy RecordingPolicy(std::vector<double>* sleeps,
                                   int64_t max_attempts = 3) {
  fault::RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.sleeper = [sleeps](double seconds) {
    if (sleeps != nullptr) sleeps->push_back(seconds);
  };
  return policy;
}

// ---------------------------------------------------------------------------
// Fault-plan grammar.
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParseFormatRoundTrip) {
  const std::string spec = "write:ENOSPC@3,rename:EIO@1x2,write:SHORT@5";
  StatusOr<fault::FaultPlan> plan = fault::ParseFaultPlan(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().faults.size(), 3u);
  EXPECT_EQ(plan.value().faults[0].op, "write");
  EXPECT_EQ(plan.value().faults[0].error_number, ENOSPC);
  EXPECT_EQ(plan.value().faults[0].first_call, 3);
  EXPECT_EQ(plan.value().faults[1].count, 2);
  EXPECT_TRUE(plan.value().faults[2].short_write);
  EXPECT_EQ(fault::FormatFaultPlan(plan.value()), spec);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  StatusOr<fault::FaultPlan> plan = fault::ParseFaultPlan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(FaultPlan, MalformedSpecsAreRejected) {
  const char* bad[] = {
      "fsync:EIO@1",      // unknown op
      "write:EWHAT@1",    // unknown errno name
      "write:EIO@0",      // ordinals are 1-based
      "write:EIO@x",      // non-numeric ordinal
      "write:EIO",        // missing ordinal
      "write@1",          // missing kind
      "read:SHORT@1",     // SHORT only applies to writes
      "write:EIO@1x0",    // zero repeat
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(fault::ParseFaultPlan(spec).ok()) << spec;
  }
}

TEST(FaultPlan, ConsumeFiresOnScheduledOrdinalsOnly) {
  fault::ScopedFaultPlan scoped("write:EIO@2x2");
  EXPECT_FALSE(fault::Consume("write").has_value());  // call 1
  auto second = fault::Consume("write");              // call 2
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->error_number, EIO);
  EXPECT_TRUE(fault::Consume("write").has_value());   // call 3
  EXPECT_FALSE(fault::Consume("write").has_value());  // call 4
  // Other ops have independent counters.
  EXPECT_FALSE(fault::Consume("rename").has_value());
}

TEST(FaultPlan, NoPlanNeverFires) {
  fault::ClearFaultPlan();
  EXPECT_FALSE(fault::FaultPlanActive());
  EXPECT_FALSE(fault::Consume("write").has_value());
}

// ---------------------------------------------------------------------------
// Retry policy.
// ---------------------------------------------------------------------------

TEST(Retry, BackoffSequenceIsDeterministic) {
  fault::RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  EXPECT_DOUBLE_EQ(fault::BackoffSeconds(policy, 2), 0.01);
  EXPECT_DOUBLE_EQ(fault::BackoffSeconds(policy, 3), 0.02);
  EXPECT_DOUBLE_EQ(fault::BackoffSeconds(policy, 4), 0.04);
  EXPECT_DOUBLE_EQ(fault::BackoffSeconds(policy, 5), 0.05);  // capped
  EXPECT_DOUBLE_EQ(fault::BackoffSeconds(policy, 6), 0.05);
}

TEST(Retry, RetriesThenSucceedsAndSleepsTheExactBackoffs) {
  fault::ResetIoStats();
  std::vector<double> sleeps;
  fault::RetryPolicy policy = RecordingPolicy(&sleeps, 5);
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 1.0;
  int calls = 0;
  const fault::RetryOutcome outcome =
      fault::RetryCall(policy, "test op", [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::Unavailable("transient");
        return Status::Ok();
      });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.retries(), 2);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_DOUBLE_EQ(sleeps[0], 0.01);
  EXPECT_DOUBLE_EQ(sleeps[1], 0.02);
  EXPECT_GE(fault::GetIoStats().retries, 2);
}

TEST(Retry, NonRetryableStatusShortCircuits) {
  std::vector<double> sleeps;
  int calls = 0;
  const fault::RetryOutcome outcome = fault::RetryCall(
      RecordingPolicy(&sleeps), "test op", [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("malformed input");
      });
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(outcome.status.code(), StatusCode::kInvalidArgument);
}

TEST(Retry, ExhaustedBudgetReportsLastStatus) {
  fault::ResetIoStats();
  const int64_t failures_before = fault::GetIoStats().failures;
  int calls = 0;
  const fault::RetryOutcome outcome =
      fault::RetryCall(RecordingPolicy(nullptr, 3), "test op",
                       [&]() -> Status {
                         ++calls;
                         return Status::Unavailable("still down");
                       });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_GT(fault::GetIoStats().failures, failures_before);
}

TEST(Retry, RetryableCodes) {
  EXPECT_TRUE(fault::IsRetryableIoError(Status::Unavailable("x")));
  EXPECT_TRUE(fault::IsRetryableIoError(Status::Internal("x")));
  EXPECT_FALSE(fault::IsRetryableIoError(Status::NotFound("x")));
  EXPECT_FALSE(fault::IsRetryableIoError(Status::InvalidArgument("x")));
  EXPECT_FALSE(fault::IsRetryableIoError(Status::Cancelled("x")));
  EXPECT_FALSE(fault::IsRetryableIoError(Status::Ok()));
}

// ---------------------------------------------------------------------------
// AtomicWriteFile under injected failures.
// ---------------------------------------------------------------------------

TEST(AtomicWrite, EnospcLeavesBothGenerationsUntouched) {
  const std::string path = TempPath("aw_enospc.bin");
  RemoveGenerations(path);
  ASSERT_TRUE(AtomicWriteFile(path, "gen A").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "gen B").ok());

  fault::ScopedFaultPlan scoped("write:ENOSPC@1");
  const Status status = AtomicWriteFile(path, "gen C");
  ASSERT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(status.message(), "No space left")) << status.message();
  EXPECT_TRUE(Contains(status.message(), "(injected)")) << status.message();
  EXPECT_EQ(ReadAll(path), "gen B");
  EXPECT_EQ(ReadAll(path + ".prev"), "gen A");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  RemoveGenerations(path);
}

TEST(AtomicWrite, ShortWritePersistsNoTornTarget) {
  const std::string path = TempPath("aw_short.bin");
  RemoveGenerations(path);
  ASSERT_TRUE(AtomicWriteFile(path, "old generation").ok());

  fault::ScopedFaultPlan scoped("write:SHORT@1");
  const Status status = AtomicWriteFile(path, "new generation content");
  ASSERT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(status.message(), "short write")) << status.message();
  // The truncated prefix only ever existed at ".tmp" and was cleaned up;
  // the published generation is whole.
  EXPECT_EQ(ReadAll(path), "old generation");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  RemoveGenerations(path);
}

TEST(AtomicWrite, RotateRenameFailureKeepsTarget) {
  const std::string path = TempPath("aw_rotate.bin");
  RemoveGenerations(path);
  ASSERT_TRUE(AtomicWriteFile(path, "current").ok());

  fault::ScopedFaultPlan scoped("rename:EIO@1");
  const Status status = AtomicWriteFile(path, "next");
  ASSERT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(status.message(), "rotate")) << status.message();
  EXPECT_EQ(ReadAll(path), "current");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  RemoveGenerations(path);
}

TEST(AtomicWrite, PublishRenameFailureRollsRotationBack) {
  const std::string path = TempPath("aw_publish.bin");
  RemoveGenerations(path);
  ASSERT_TRUE(AtomicWriteFile(path, "gen A").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "gen B").ok());

  // The first rename (rotate to .prev) succeeds; the second (publish)
  // fails. Without rollback, `path` would vanish.
  fault::ScopedFaultPlan scoped("rename:EIO@2");
  const Status status = AtomicWriteFile(path, "gen C");
  ASSERT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(status.message(), "publish")) << status.message();
  ASSERT_TRUE(FileExists(path));
  EXPECT_EQ(ReadAll(path), "gen B");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  RemoveGenerations(path);
}

TEST(AtomicWrite, RetryWrapperSucceedsAfterTransientFaults) {
  const std::string path = TempPath("aw_retry.bin");
  RemoveGenerations(path);
  fault::ScopedFaultPlan scoped("write:ENOSPC@1x2");
  fault::RetryOutcome outcome;
  const Status status = AtomicWriteFileWithRetry(
      path, "payload", /*keep_previous=*/true, RecordingPolicy(nullptr, 3),
      &outcome);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(ReadAll(path), "payload");
  RemoveGenerations(path);
}

TEST(AtomicWrite, UnlinkFailureOnlyWarns) {
  const std::string path = TempPath("aw_unlink.bin");
  RemoveGenerations(path);
  {
    // The write fails AND the temp-file cleanup fails: still just a status,
    // and the leftover ".tmp" does not poison the next attempt.
    fault::ScopedFaultPlan scoped("write:EIO@1,unlink:EIO@1");
    EXPECT_FALSE(AtomicWriteFile(path, "doomed").ok());
  }
  ASSERT_TRUE(AtomicWriteFile(path, "recovered").ok());
  EXPECT_EQ(ReadAll(path), "recovered");
  RemoveGenerations(path);
}

TEST(ReadFile, InjectedOpenAndReadFaultsAreUnavailable) {
  const std::string path = TempPath("rf_faults.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "content", false).ok());
  {
    fault::ScopedFaultPlan scoped("open:EACCES@1");
    const Status status = ReadFileToString(path).status();
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(Contains(status.message(), "(injected)")) << status.message();
  }
  {
    fault::ScopedFaultPlan scoped("read:EIO@1");
    EXPECT_EQ(ReadFileToString(path).status().code(),
              StatusCode::kUnavailable);
  }
  // A genuinely missing file is NotFound, not Unavailable: retrying cannot
  // conjure it.
  EXPECT_EQ(ReadFileToString(TempPath("rf_missing.txt")).status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint call sites under a fault plan.
// ---------------------------------------------------------------------------

PreparedData TinyData(uint64_t seed = 31) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = seed;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

SearchOptions TinySearchOptions() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 1;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  options.io_retry = RecordingPolicy(nullptr, 3);
  return options;
}

TEST(CheckpointFaults, SearchCheckpointRetriesThenSucceeds) {
  const PreparedData data = TinyData();
  const std::string path = TempPath("cf_search.bin");
  RemoveGenerations(path);

  SearchOptions options = TinySearchOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_n_batches = 2;
  obs::MetricsRegistry registry;
  options.metrics = &registry;

  // The very first checkpoint write fails once with ENOSPC, is retried per
  // policy, and the run finishes bit-identical to a no-fault run.
  SearchResult faulted;
  {
    fault::ScopedFaultPlan scoped("write:ENOSPC@1");
    faulted = JointSearcher(options).Search(data);
  }
  ASSERT_TRUE(FileExists(path));
  EXPECT_TRUE(LoadSearchCheckpoint(path).ok());
  EXPECT_GE(registry.GetCounter(core::kMetricIoRetries)->value(), 1);
  EXPECT_EQ(registry.GetCounter(core::kMetricIoFailures)->value(), 0);

  RemoveGenerations(path);
  SearchOptions clean_options = TinySearchOptions();
  const SearchResult clean = JointSearcher(clean_options).Search(data);
  EXPECT_EQ(faulted.genotype.ToText(), clean.genotype.ToText());
  EXPECT_EQ(faulted.final_validation_loss, clean.final_validation_loss);
  RemoveGenerations(path);
}

TEST(CheckpointFaults, SearchDegradesWhenEveryWriteFails) {
  const PreparedData data = TinyData();
  const std::string path = TempPath("cf_search_dead.bin");
  RemoveGenerations(path);

  SearchOptions options = TinySearchOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_n_batches = 2;
  obs::MetricsRegistry registry;
  options.metrics = &registry;

  SearchResult faulted;
  {
    fault::ScopedFaultPlan scoped("write:ENOSPC@1x1000");
    faulted = JointSearcher(options).Search(data);
  }
  // The disk never took a byte, but the search itself survived.
  EXPECT_FALSE(FileExists(path));
  EXPECT_GE(registry.GetCounter(core::kMetricIoFailures)->value(), 1);

  SearchOptions clean_options = TinySearchOptions();
  const SearchResult clean = JointSearcher(clean_options).Search(data);
  EXPECT_EQ(faulted.genotype.ToText(), clean.genotype.ToText());
  RemoveGenerations(path);
}

TEST(CheckpointFaults, PrevGenerationFallbackAfterCorruption) {
  const PreparedData data = TinyData();
  const std::string path = TempPath("cf_prev.bin");
  RemoveGenerations(path);

  SearchOptions options = TinySearchOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_n_batches = 2;
  JointSearcher(options).Search(data);
  ASSERT_TRUE(FileExists(path));
  ASSERT_TRUE(FileExists(path + ".prev"));

  // Corrupt the newest generation; the loader falls back to ".prev".
  ASSERT_TRUE(AtomicWriteFile(path, "garbage", /*keep_previous=*/false).ok());
  bool used_prev = false;
  EXPECT_TRUE(LoadSearchCheckpointOrPrev(path, &used_prev).ok());
  EXPECT_TRUE(used_prev);
  RemoveGenerations(path);
}

Genotype MakeCandidate(int64_t variant) {
  const std::vector<std::string> ops = {"identity", "gdcc", "inf_s", "dgcn",
                                        "inf_t"};
  const auto op = [&](int64_t i) {
    return ops[(variant + i) % static_cast<int64_t>(ops.size())];
  };
  Genotype genotype;
  genotype.nodes_per_block = 3;
  for (int64_t b = 0; b < 2; ++b) {
    core::BlockGenotype block;
    block.edges.push_back({0, 1, op(b)});
    block.edges.push_back({1, 2, op(b + 1)});
    block.edges.push_back({0, 2, op(b + 2)});
    genotype.blocks.push_back(block);
  }
  genotype.block_inputs = {0, 1};
  AUTOCTS_CHECK(genotype.Validate().ok());
  return genotype;
}

EvalSchedulerOptions TinyEvalOptions() {
  EvalSchedulerOptions options;
  options.workers = 1;
  options.hidden_dim = 8;
  options.verbose = false;
  options.train.epochs = 1;
  options.train.batch_size = 8;
  options.train.max_batches_per_epoch = 2;
  options.train.seed = 7;
  options.io_retry = RecordingPolicy(nullptr, 3);
  return options;
}

TEST(CheckpointFaults, EvalCheckpointRetriesThenSucceeds) {
  const PreparedData data = TinyData();
  const std::string path = TempPath("cf_eval.bin");
  RemoveGenerations(path);

  EvalSchedulerOptions options = TinyEvalOptions();
  options.checkpoint_path = path;
  obs::MetricsRegistry registry;
  options.metrics = &registry;

  const std::vector<Genotype> candidates = {MakeCandidate(0),
                                            MakeCandidate(1)};
  fault::ScopedFaultPlan scoped("write:ENOSPC@1");
  StatusOr<core::EvalBatchResult> result =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().evaluated, 2);
  ASSERT_TRUE(FileExists(path));
  EXPECT_TRUE(core::LoadEvalCheckpoint(path).ok());
  EXPECT_GE(registry.GetCounter(core::kEvalMetricIoRetries)->value(), 1);
  EXPECT_EQ(registry.GetCounter(core::kEvalMetricIoFailures)->value(), 0);
  RemoveGenerations(path);
}

TEST(CheckpointFaults, EvalDegradesWhenEveryWriteFails) {
  const PreparedData data = TinyData();
  const std::string path = TempPath("cf_eval_dead.bin");
  RemoveGenerations(path);

  EvalSchedulerOptions options = TinyEvalOptions();
  options.checkpoint_path = path;
  obs::MetricsRegistry registry;
  options.metrics = &registry;

  const std::vector<Genotype> candidates = {MakeCandidate(0),
                                            MakeCandidate(1)};
  fault::ScopedFaultPlan scoped("write:ENOSPC@1x1000");
  StatusOr<core::EvalBatchResult> result =
      EvalScheduler(options).Evaluate(candidates, data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().evaluated, 2);
  EXPECT_EQ(result.value().failed, 0);
  EXPECT_FALSE(FileExists(path));
  EXPECT_GE(registry.GetCounter(core::kEvalMetricIoFailures)->value(), 1);
  RemoveGenerations(path);
}

}  // namespace
}  // namespace autocts
