// Wire-codec suite: proves the framing layer's corruption-rejection claim
// exhaustively rather than by sampling.
//
//   - Round-trips: request/response/status frames decode back bit-for-bit
//     (doubles travel as IEEE-754 u64 images, so NaN payloads and negative
//     zero survive too).
//   - Exhaustive single-byte-flip sweep: every bit of every byte of every
//     frame kind, flipped one at a time — DecodeFrame must reject all of
//     them (header validation or the CRC trailer catches each).
//   - Every-truncation sweep: all proper prefixes rejected; one byte of
//     trailing garbage rejected (exact-size rule).
//   - Seeded fuzz: random byte blobs and random sealed-but-garbage payloads
//     must never crash the decoder (run under ASan in tier1_verify.sh).
//   - Golden fixtures in testdata/wire_golden_v1/: the checked-in bytes of
//     one frame per kind. Any codec change that shifts a single wire byte
//     fails loudly here; AUTOCTS_REGEN_GOLDENS=1 rewrites them after a
//     deliberate format bump.
#include "net/wire_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/random.h"

namespace autocts::net {
namespace {

#ifndef AUTOCTS_TESTDATA_DIR
#error "AUTOCTS_TESTDATA_DIR must be defined by the build"
#endif

// A request window with values that stress exact transport: negative zero,
// denormals, huge magnitudes, and NaN.
Tensor MakeWindow() {
  Tensor window({2, 3, 2});
  double value = 0.25;
  for (int64_t i = 0; i < window.size(); ++i) {
    window.data()[i] = value;
    value = value * -3.5 + 1.0 / 7.0;
  }
  window.data()[0] = -0.0;
  window.data()[1] = std::numeric_limits<double>::denorm_min();
  window.data()[2] = -1.7976931348623157e308;
  window.data()[3] = std::numeric_limits<double>::quiet_NaN();
  return window;
}

Tensor MakeForecast() {
  Tensor forecast({3, 4});
  for (int64_t i = 0; i < forecast.size(); ++i) {
    forecast.data()[i] = 1.0 / static_cast<double>(i + 3);
  }
  forecast.data()[5] = -0.0;
  return forecast;
}

void ExpectBitsEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(double)),
            0);
}

TEST(WireCodecTest, PredictRequestRoundTripsBitExactly) {
  const Tensor window = MakeWindow();
  const std::string bytes = EncodePredictRequest(window, 1234567890);
  EXPECT_EQ(bytes.size(),
            kFrameOverheadBytes + 12 + 8 +
                static_cast<size_t>(window.size()) * 8);
  const StatusOr<Frame> frame = DecodeFrame(bytes);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().type, FrameType::kPredictRequest);
  EXPECT_EQ(frame.value().deadline_budget_nanos, 1234567890);
  ExpectBitsEqual(frame.value().window, window);
}

TEST(WireCodecTest, RequestDeadlineBudgetKeepsSign) {
  const Tensor window = MakeWindow();
  for (const int64_t budget : {int64_t{0}, int64_t{-1}, int64_t{1},
                               int64_t{-987654321098765}}) {
    const StatusOr<Frame> frame =
        DecodeFrame(EncodePredictRequest(window, budget));
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame.value().deadline_budget_nanos, budget);
  }
}

TEST(WireCodecTest, PredictResponseRoundTripsBitExactly) {
  const Tensor forecast = MakeForecast();
  const std::string bytes = EncodePredictResponse(forecast);
  const StatusOr<Frame> frame = DecodeFrame(bytes);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().type, FrameType::kPredictResponse);
  ExpectBitsEqual(frame.value().forecast, forecast);
}

TEST(WireCodecTest, StatusFrameCarriesEveryNonOkCode) {
  const std::vector<Status> statuses = {
      Status::Cancelled("stop"),
      Status::InvalidArgument("bad window"),
      Status::NotFound("no artifact"),
      Status::OutOfRange("bad index"),
      Status::Internal("bug"),
      Status::DeadlineExceeded("late"),
      Status::Unavailable(""),  // empty message round-trips too
  };
  for (const Status& status : statuses) {
    const StatusOr<Frame> frame = DecodeFrame(EncodeStatusFrame(status));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame.value().type, FrameType::kStatus);
    EXPECT_EQ(frame.value().status.code(), status.code());
    EXPECT_EQ(frame.value().status.message(), status.message());
  }
}

TEST(WireCodecTest, HeaderLayoutIsLittleEndianWithMagicFirst) {
  const std::string bytes = EncodeStatusFrame(Status::Unavailable("x"));
  ASSERT_GE(bytes.size(), kFrameHeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), "ACTS");
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), kWireVersion);
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]),
            static_cast<uint8_t>(FrameType::kStatus));
  EXPECT_EQ(bytes[6], '\0');  // reserved
  EXPECT_EQ(bytes[7], '\0');
  // Payload length, little-endian: i32 code + u32 len + 1 message byte.
  const uint32_t payload = static_cast<uint8_t>(bytes[8]) |
                           (static_cast<uint32_t>(
                                static_cast<uint8_t>(bytes[9]))
                            << 8) |
                           (static_cast<uint32_t>(
                                static_cast<uint8_t>(bytes[10]))
                            << 16) |
                           (static_cast<uint32_t>(
                                static_cast<uint8_t>(bytes[11]))
                            << 24);
  EXPECT_EQ(payload, 9u);
  EXPECT_EQ(bytes.size(), kFrameOverheadBytes + 9);
}

TEST(WireCodecTest, PeekFrameSizeValidatesTheFixedHeader) {
  const std::string good = EncodePredictResponse(MakeForecast());
  const StatusOr<size_t> size = PeekFrameSize(good.data(), good.size());
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), good.size());

  // Too few bytes to even inspect.
  EXPECT_FALSE(PeekFrameSize(good.data(), kFrameHeaderBytes - 1).ok());

  // Bad magic / version / type / reserved, each in isolation.
  for (const size_t offset : {size_t{0}, size_t{4}, size_t{5}, size_t{6}}) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x5A);
    EXPECT_FALSE(PeekFrameSize(bad.data(), bad.size()).ok())
        << "header byte " << offset << " not validated";
  }

  // An absurd length prefix is rejected before any allocation.
  std::string huge = good;
  huge[8] = huge[9] = huge[10] = huge[11] = static_cast<char>(0xFF);
  EXPECT_FALSE(PeekFrameSize(huge.data(), huge.size()).ok());
}

// The central claim: EVERY single-bit corruption of EVERY byte of a valid
// frame is rejected. Header bytes fail validation, payload/CRC bytes fail
// the CRC trailer; nothing slips through and nothing crashes.
TEST(WireCodecTest, EverySingleByteFlipIsRejected) {
  const std::vector<std::string> frames = {
      EncodePredictRequest(MakeWindow(), 55),
      EncodePredictResponse(MakeForecast()),
      EncodeStatusFrame(Status::DeadlineExceeded("too late")),
  };
  for (size_t f = 0; f < frames.size(); ++f) {
    const std::string& good = frames[f];
    ASSERT_TRUE(DecodeFrame(good).ok());
    for (size_t i = 0; i < good.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string bad = good;
        bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
        const StatusOr<Frame> decoded = DecodeFrame(bad);
        EXPECT_FALSE(decoded.ok())
            << "frame " << f << ": flipping bit " << bit << " of byte " << i
            << " was not detected";
      }
    }
  }
}

TEST(WireCodecTest, EveryTruncationIsRejected) {
  const std::vector<std::string> frames = {
      EncodePredictRequest(MakeWindow(), 55),
      EncodePredictResponse(MakeForecast()),
      EncodeStatusFrame(Status::Unavailable("shed")),
  };
  for (size_t f = 0; f < frames.size(); ++f) {
    const std::string& good = frames[f];
    for (size_t keep = 0; keep < good.size(); ++keep) {
      const StatusOr<Frame> decoded = DecodeFrame(good.substr(0, keep));
      EXPECT_FALSE(decoded.ok())
          << "frame " << f << " truncated to " << keep << " bytes decoded";
    }
    // Trailing garbage violates the exact-size rule even with a valid CRC
    // prefix.
    EXPECT_FALSE(DecodeFrame(good + 'x').ok());
  }
}

// Random blobs: the decoder must return non-OK without crashing. A random
// blob passing magic + version + type + reserved + CRC has probability
// ~2^-80; asserting non-OK is sound.
TEST(WireCodecTest, RandomBytesFuzzNeverCrashes) {
  Rng rng(20260809);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const size_t size = static_cast<size_t>(rng.Next() % 256);
    std::string blob(size, '\0');
    for (size_t i = 0; i < size; ++i) {
      blob[i] = static_cast<char>(rng.Next() & 0xFF);
    }
    EXPECT_FALSE(DecodeFrame(blob).ok());
    if (size >= kFrameHeaderBytes) {
      PeekFrameSize(blob.data(), blob.size());  // must not crash either
    }
  }
}

// Correctly sealed frames (valid header + valid CRC) around garbage
// payloads: forces the payload parsers themselves to reject bad structure
// (length arithmetic, dimension bounds, unknown status codes) rather than
// hiding behind the CRC.
TEST(WireCodecTest, SealedGarbagePayloadFuzzNeverCrashes) {
  Rng rng(907);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const size_t payload_size = static_cast<size_t>(rng.Next() % 128);
    std::string frame(kFrameHeaderBytes + payload_size, '\0');
    frame[0] = 'A';
    frame[1] = 'C';
    frame[2] = 'T';
    frame[3] = 'S';
    frame[4] = static_cast<char>(kWireVersion);
    frame[5] = static_cast<char>(1 + rng.Next() % 3);  // a real FrameType
    frame[6] = frame[7] = '\0';
    frame[8] = static_cast<char>(payload_size & 0xFF);
    frame[9] = static_cast<char>((payload_size >> 8) & 0xFF);
    frame[10] = static_cast<char>((payload_size >> 16) & 0xFF);
    frame[11] = static_cast<char>((payload_size >> 24) & 0xFF);
    for (size_t i = kFrameHeaderBytes; i < frame.size(); ++i) {
      frame[i] = static_cast<char>(rng.Next() & 0xFF);
    }
    const uint32_t crc = Crc32(frame.data(), frame.size());
    frame.push_back(static_cast<char>(crc & 0xFF));
    frame.push_back(static_cast<char>((crc >> 8) & 0xFF));
    frame.push_back(static_cast<char>((crc >> 16) & 0xFF));
    frame.push_back(static_cast<char>((crc >> 24) & 0xFF));
    // Must not crash. Structurally valid payloads may legitimately decode;
    // everything else must come back non-OK (not checked per-iteration —
    // the point of this loop is memory safety under ASan).
    DecodeFrame(frame);
  }
}

// ---------------------------------------------------------------------------
// Golden frames: the v1 wire format, byte for byte. Deterministic inputs so
// regeneration is reproducible on any host (the codec is explicitly
// little-endian regardless of host endianness).

Tensor GoldenWindow() {
  Tensor window({2, 2, 1});
  window.data()[0] = 1.5;
  window.data()[1] = -2.25;
  window.data()[2] = 3.125;
  window.data()[3] = -0.0;
  return window;
}

Tensor GoldenForecast() {
  Tensor forecast({2, 2});
  forecast.data()[0] = 0.1;  // not exactly representable: bit image pinned
  forecast.data()[1] = -1.0 / 3.0;
  forecast.data()[2] = 42.0;
  forecast.data()[3] = 1e-300;
  return forecast;
}

struct GoldenCase {
  const char* file;
  std::string bytes;
};

std::vector<GoldenCase> GoldenCases() {
  return {
      {"predict_request.bin",
       EncodePredictRequest(GoldenWindow(), 2500000000)},
      {"predict_response.bin", EncodePredictResponse(GoldenForecast())},
      {"status.bin",
       EncodeStatusFrame(Status::Unavailable("request queue full"))},
  };
}

std::string GoldenPath(const char* file) {
  return std::string(AUTOCTS_TESTDATA_DIR) + "/wire_golden_v1/" + file;
}

TEST(WireGoldenTest, CheckedInFramesMatchTheEncoderByteForByte) {
  if (std::getenv("AUTOCTS_REGEN_GOLDENS") != nullptr) {
    for (const GoldenCase& golden : GoldenCases()) {
      std::ofstream out(GoldenPath(golden.file), std::ios::binary);
      out.write(golden.bytes.data(),
                static_cast<std::streamsize>(golden.bytes.size()));
      ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath(golden.file);
    }
    GTEST_SKIP() << "goldens regenerated";
  }
  for (const GoldenCase& golden : GoldenCases()) {
    std::ifstream in(GoldenPath(golden.file), std::ios::binary);
    ASSERT_TRUE(in.good())
        << GoldenPath(golden.file)
        << " missing — run with AUTOCTS_REGEN_GOLDENS=1 to create it";
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string checked_in = buffer.str();
    EXPECT_EQ(checked_in, golden.bytes)
        << golden.file
        << ": the encoder no longer produces the v1 bytes. If the format "
           "change is deliberate, bump kWireVersion and regenerate.";
  }
}

TEST(WireGoldenTest, CheckedInFramesStillDecodeBitExactly) {
  if (std::getenv("AUTOCTS_REGEN_GOLDENS") != nullptr) {
    GTEST_SKIP() << "regen run";
  }
  for (const GoldenCase& golden : GoldenCases()) {
    std::ifstream in(GoldenPath(golden.file), std::ios::binary);
    ASSERT_TRUE(in.good()) << GoldenPath(golden.file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const StatusOr<Frame> frame = DecodeFrame(buffer.str());
    ASSERT_TRUE(frame.ok())
        << golden.file << ": " << frame.status().ToString();
  }
  const StatusOr<Frame> request = DecodeFrame(GoldenCases()[0].bytes);
  ASSERT_TRUE(request.ok());
  ExpectBitsEqual(request.value().window, GoldenWindow());
  EXPECT_EQ(request.value().deadline_budget_nanos, 2500000000);
  const StatusOr<Frame> response = DecodeFrame(GoldenCases()[1].bytes);
  ASSERT_TRUE(response.ok());
  ExpectBitsEqual(response.value().forecast, GoldenForecast());
}

}  // namespace
}  // namespace autocts::net
