// Tests of the deterministic parallel-execution layer (common/parallel.*)
// and of the bit-identity guarantees the tensor kernels build on it: the
// same inputs must produce byte-identical results for every thread count,
// up to and including a full JointSearcher run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

TEST(ParallelFor, SetNumThreadsIsObserved) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (const int64_t threads : {1, 4}) {
    SetNumThreads(threads);
    std::vector<int> hits(1000, 0);
    ParallelFor(0, 1000, 17, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) ++hits[i];
    });
    EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), 1000)
        << "threads=" << threads;
  }
  SetNumThreads(1);
}

TEST(ParallelFor, ChunkBoundariesDoNotDependOnThreadCount) {
  auto chunks_at = [](int64_t threads) {
    SetNumThreads(threads);
    std::mutex mutex;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    ParallelFor(5, 1234, 100, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = chunks_at(1);
  const auto parallel = chunks_at(4);
  EXPECT_EQ(serial, parallel);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial.front().first, 5);
  EXPECT_EQ(serial.back().second, 1234);
  // Fixed grain: every chunk except the last spans exactly 100 elements.
  for (size_t i = 0; i + 1 < serial.size(); ++i) {
    EXPECT_EQ(serial[i].second - serial[i].first, 100);
    EXPECT_EQ(serial[i].second, serial[i + 1].first);
  }
  SetNumThreads(1);
}

TEST(ParallelFor, NestedCallsRunWithoutDeadlock) {
  SetNumThreads(4);
  std::vector<int> hits(64 * 64, 0);
  ParallelFor(0, 64, 4, [&](int64_t olo, int64_t ohi) {
    for (int64_t o = olo; o < ohi; ++o) {
      ParallelFor(0, 64, 8, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) ++hits[o * 64 + i];
      });
    }
  });
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), 64 * 64);
  SetNumThreads(1);
}

TEST(ParallelSum, BitIdenticalAcrossThreadCounts) {
  Rng rng(21);
  const Tensor data = Tensor::Randn({100000}, &rng);
  SetNumThreads(1);
  const double serial_sum = SumAll(data);
  const double serial_sq = SumSquares(data);
  const double serial_norm = Norm(data);
  SetNumThreads(4);
  EXPECT_EQ(SumAll(data), serial_sum);
  EXPECT_EQ(SumSquares(data), serial_sq);
  EXPECT_EQ(Norm(data), serial_norm);
  SetNumThreads(1);
}

TEST(ParallelKernels, BitIdenticalAcrossThreadCounts) {
  Rng rng(22);
  const Tensor a = Tensor::Randn({3, 50, 40}, &rng);
  const Tensor b = Tensor::Randn({3, 50, 40}, &rng);
  const Tensor row = Tensor::Randn({40}, &rng);
  const Tensor lhs = Tensor::Randn({2, 3, 30, 20}, &rng);
  const Tensor rhs = Tensor::Randn({20, 25}, &rng);

  SetNumThreads(1);
  const Tensor add1 = Add(a, b);
  const Tensor bcast1 = Mul(a, row);
  const Tensor mm1 = MatMul(lhs, rhs);
  const Tensor sum1 = Sum(a, 1);
  const Tensor max1 = Max(a, 0);
  const Tensor soft1 = Softmax(a, 2);
  const Tensor expand1 = BroadcastTo(row, {3, 50, 40});
  const Tensor tanh1 = Tanh(a);

  SetNumThreads(4);
  EXPECT_TRUE(BitIdentical(Add(a, b), add1));
  EXPECT_TRUE(BitIdentical(Mul(a, row), bcast1));
  EXPECT_TRUE(BitIdentical(MatMul(lhs, rhs), mm1));
  EXPECT_TRUE(BitIdentical(Sum(a, 1), sum1));
  EXPECT_TRUE(BitIdentical(Max(a, 0), max1));
  EXPECT_TRUE(BitIdentical(Softmax(a, 2), soft1));
  EXPECT_TRUE(BitIdentical(BroadcastTo(row, {3, 50, 40}), expand1));
  EXPECT_TRUE(BitIdentical(Tanh(a), tanh1));
  SetNumThreads(1);
}

// A whole search step — supernet forward/backward, optimizer steps, clip —
// must not depend on the thread count: same derived genotype, bit-identical
// final validation loss.
TEST(ParallelSearch, JointSearcherIsBitIdenticalAcrossThreadCounts) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 200;
  config.seed = 31;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  const models::PreparedData data =
      models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                          0.1);

  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 1;
  options.batch_size = 8;
  options.max_batches_per_epoch = 3;
  // The unrolled second-order path exercises SumSquares in the searcher's
  // Hessian-vector product as well.
  options.bilevel_order = 2;

  SetNumThreads(1);
  const core::SearchResult serial =
      core::JointSearcher(options).Search(data);
  SetNumThreads(4);
  const core::SearchResult threaded =
      core::JointSearcher(options).Search(data);
  SetNumThreads(1);

  EXPECT_EQ(serial.genotype, threaded.genotype);
  EXPECT_EQ(serial.final_validation_loss, threaded.final_validation_loss);
  EXPECT_EQ(serial.supernet_parameters, threaded.supernet_parameters);
}

}  // namespace
}  // namespace autocts
