// End-to-end determinism suite: the search trajectory — genotype, losses,
// and the deterministic projection of the metrics row log — must be
// bit-identical across repeated runs, across thread counts, and across a
// crash/resume cycle with metrics enabled.
//
// The comparisons go through MetricsRegistry::StripWallColumns: wall-clock
// columns ("wall/...") legitimately differ between runs; every other column
// must match byte-for-byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/parallel.h"
#include "core/search_checkpoint.h"
#include "core/search_metrics.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"

namespace autocts {
namespace {

using core::JointSearcher;
using core::LoadSearchCheckpoint;
using core::SearchCheckpoint;
using core::SearchOptions;
using core::SearchResult;
using models::PreparedData;
using obs::MetricsRegistry;

// Thrown from the post-checkpoint hook to simulate a crash (see
// tests/checkpoint_test.cc).
struct KillSignal {};

PreparedData TinyData(uint64_t seed = 31) {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = seed;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

SearchOptions TinyOptions() {
  SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  return options;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "determinism_test_" + name;
}

void RemoveGenerations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());
}

struct InstrumentedRun {
  SearchResult result;
  std::string deterministic_csv;  // ToCsv() with wall/ columns stripped
};

InstrumentedRun RunInstrumented(SearchOptions options,
                                const PreparedData& data) {
  MetricsRegistry registry;
  options.metrics = &registry;
  options.metrics_every_n_batches = 1;
  InstrumentedRun run;
  run.result = JointSearcher(options).Search(data);
  run.deterministic_csv = MetricsRegistry::StripWallColumns(registry.ToCsv());
  return run;
}

TEST(Determinism, SameSeedSameTrajectoryIncludingMetrics) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.seed = 77;
  const InstrumentedRun a = RunInstrumented(options, data);
  const InstrumentedRun b = RunInstrumented(options, data);
  EXPECT_EQ(a.result.genotype, b.result.genotype);
  EXPECT_EQ(a.result.final_validation_loss, b.result.final_validation_loss);
  EXPECT_EQ(a.deterministic_csv, b.deterministic_csv);
  // Sanity: the projection still carries real content.
  EXPECT_NE(a.deterministic_csv.find("epoch,"), std::string::npos);
  EXPECT_NE(a.deterministic_csv.find("val_loss_epoch"), std::string::npos);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const PreparedData data = TinyData();
  SearchOptions options = TinyOptions();
  options.seed = 1;
  const InstrumentedRun a = RunInstrumented(options, data);
  options.seed = 2;
  const InstrumentedRun b = RunInstrumented(options, data);
  // Different seeds shuffle differently; the metrics trajectories must
  // differ (guards against the CSV accidentally comparing empty strings).
  EXPECT_NE(a.deterministic_csv, b.deterministic_csv);
}

TEST(Determinism, ThreadCountDoesNotChangeTrajectoryOrMetrics) {
  const PreparedData data = TinyData();
  std::string reference_genotype;
  std::string reference_csv;
  double reference_loss = 0.0;
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const InstrumentedRun run = RunInstrumented(TinyOptions(), data);
    if (reference_genotype.empty()) {
      reference_genotype = run.result.genotype.ToText();
      reference_csv = run.deterministic_csv;
      reference_loss = run.result.final_validation_loss;
    } else {
      EXPECT_EQ(run.result.genotype.ToText(), reference_genotype);
      EXPECT_EQ(run.result.final_validation_loss, reference_loss);
      EXPECT_EQ(run.deterministic_csv, reference_csv);
    }
  }
  SetNumThreads(1);
}

TEST(Determinism, MetricsStateSurvivesCheckpointRoundTrip) {
  // A checkpoint written mid-search embeds the registry state; decoding
  // the file recovers it bit-exactly.
  const PreparedData data = TinyData();
  const std::string path = TempPath("roundtrip");
  RemoveGenerations(path);

  SearchOptions options = TinyOptions();
  MetricsRegistry registry;
  options.metrics = &registry;
  options.metrics_every_n_batches = 1;
  options.checkpoint_path = path;
  options.checkpoint_every_n_batches = 3;
  (void)JointSearcher(options).Search(data);

  StatusOr<SearchCheckpoint> loaded = LoadSearchCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_FALSE(loaded.value().metrics_state.empty());
  MetricsRegistry restored;
  ASSERT_TRUE(restored.DecodeState(loaded.value().metrics_state).ok());
  // The newest checkpoint was written mid-run (after batch 6 of 8), so its
  // embedded row log is an exact prefix of the finished run's: identical
  // rows up to the capture point, nothing invented, nothing reordered.
  const std::string full =
      MetricsRegistry::StripWallColumns(registry.ToCsv());
  const std::string prefix =
      MetricsRegistry::StripWallColumns(restored.ToCsv());
  ASSERT_FALSE(restored.rows().empty());
  EXPECT_LT(restored.rows().size(), registry.rows().size());
  EXPECT_EQ(full.compare(0, prefix.size(), prefix), 0)
      << "restored metrics are not a prefix of the live registry";
  RemoveGenerations(path);
}

TEST(Determinism, ResumeMidEpochReplaysIdenticalMetrics) {
  const PreparedData data = TinyData();
  // checkpoint_every=3 with 2 epochs x 4 steps gives boundaries at
  // cursors (0,3) — mid-epoch — and (1,3); kill at each in turn.
  const int64_t checkpoint_every = 3;
  const int64_t num_boundaries = 2;

  // Uninterrupted reference with metrics on.
  SearchOptions reference_options = TinyOptions();
  MetricsRegistry reference_registry;
  reference_options.metrics = &reference_registry;
  reference_options.metrics_every_n_batches = 1;
  reference_options.checkpoint_path = TempPath("reference");
  reference_options.checkpoint_every_n_batches = checkpoint_every;
  RemoveGenerations(reference_options.checkpoint_path);
  const SearchResult reference =
      JointSearcher(reference_options).Search(data);
  const std::string reference_csv =
      MetricsRegistry::StripWallColumns(reference_registry.ToCsv());
  RemoveGenerations(reference_options.checkpoint_path);

  for (int64_t kill = 0; kill < num_boundaries; ++kill) {
    SCOPED_TRACE("kill after checkpoint #" + std::to_string(kill));
    const std::string path = TempPath("kill" + std::to_string(kill));
    RemoveGenerations(path);

    SearchOptions killed_options = TinyOptions();
    MetricsRegistry killed_registry;
    killed_options.metrics = &killed_registry;
    killed_options.metrics_every_n_batches = 1;
    killed_options.checkpoint_path = path;
    killed_options.checkpoint_every_n_batches = checkpoint_every;
    killed_options.post_checkpoint_hook = [&](int64_t ordinal,
                                              const std::string&) {
      if (ordinal == kill) throw KillSignal{};
    };
    bool killed = false;
    try {
      JointSearcher(killed_options).Search(data);
    } catch (const KillSignal&) {
      killed = true;
    }
    ASSERT_TRUE(killed);

    // Resume into a fresh registry: the checkpoint's embedded state seeds
    // it, and the remaining steps replay the reference rows exactly.
    SearchOptions resume_options = TinyOptions();
    MetricsRegistry resumed_registry;
    resume_options.metrics = &resumed_registry;
    resume_options.metrics_every_n_batches = 1;
    resume_options.checkpoint_path = path;
    resume_options.checkpoint_every_n_batches = checkpoint_every;
    resume_options.resume = true;
    const SearchResult resumed = JointSearcher(resume_options).Search(data);

    EXPECT_EQ(resumed.genotype, reference.genotype);
    EXPECT_EQ(resumed.final_validation_loss,
              reference.final_validation_loss);
    EXPECT_EQ(MetricsRegistry::StripWallColumns(resumed_registry.ToCsv()),
              reference_csv);
    RemoveGenerations(path);
  }
}

TEST(Determinism, PreObservabilityCheckpointStillResumes) {
  // A checkpoint without a metrics_state record (as written before this
  // subsystem existed, emulated by clearing the field and re-saving) must
  // resume cleanly with an empty-but-registered metrics registry.
  const PreparedData data = TinyData();
  const std::string path = TempPath("legacy");
  RemoveGenerations(path);

  SearchOptions options = TinyOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_n_batches = 3;
  options.post_checkpoint_hook = [](int64_t ordinal, const std::string&) {
    if (ordinal == 0) throw KillSignal{};
  };
  bool killed = false;
  try {
    JointSearcher(options).Search(data);
  } catch (const KillSignal&) {
    killed = true;
  }
  ASSERT_TRUE(killed);

  StatusOr<SearchCheckpoint> loaded = LoadSearchCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  SearchCheckpoint legacy = loaded.value();
  legacy.metrics_state.clear();
  ASSERT_TRUE(core::SaveSearchCheckpoint(legacy, path).ok());

  SearchOptions resume_options = TinyOptions();
  MetricsRegistry registry;
  resume_options.metrics = &registry;
  resume_options.checkpoint_path = path;
  resume_options.checkpoint_every_n_batches = 3;
  resume_options.resume = true;
  const SearchResult resumed = JointSearcher(resume_options).Search(data);
  EXPECT_TRUE(resumed.genotype.Validate().ok());
  // The registry recorded only the post-resume portion.
  EXPECT_GT(registry.GetCounter(core::kMetricStepsTotal)->value(), 0);
  RemoveGenerations(path);
}

}  // namespace
}  // namespace autocts
