// Tests for the extension features beyond the paper's core method:
// the operator cost model + efficiency-aware search (the paper's Section 6
// future-work direction) and early stopping in the trainer.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/cost_model.h"
#include "ops/simple_ops.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "graph/adjacency.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/state_dict.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

models::PreparedData TinyData() {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = 300;
  config.seed = 61;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

TEST(CostModel, NonParametricOpsAreFree) {
  EXPECT_EQ(core::OperatorCost("zero"), 0.0);
  EXPECT_EQ(core::OperatorCost("identity"), 0.0);
}

TEST(CostModel, OrderingMatchesFigure6) {
  // CNN cheapest among parametric T-ops; RNNs the most expensive;
  // Informer cheaper than Transformer (the sparse-query argument).
  EXPECT_LT(core::OperatorCost("conv1d"), core::OperatorCost("gdcc"));
  EXPECT_LT(core::OperatorCost("gdcc"), core::OperatorCost("gru"));
  EXPECT_LT(core::OperatorCost("gru"), core::OperatorCost("lstm"));
  EXPECT_LT(core::OperatorCost("inf_t"), core::OperatorCost("trans_t"));
  EXPECT_LT(core::OperatorCost("inf_s"), core::OperatorCost("trans_s"));
}

TEST(CostModel, UnknownBuiltinDiesCustomGetsDefault) {
  EXPECT_DEATH(core::OperatorCost("made_up_op"), "");
  if (!ops::OpRegistry::Global().Contains("ext_test_op")) {
    ops::OpRegistry::Global().Register(
        "ext_test_op", [](const ops::OpContext&) -> ops::StOperatorPtr {
          return std::make_unique<ops::IdentityOp>();
        });
  }
  EXPECT_EQ(core::OperatorCost("ext_test_op", 0.7), 0.7);
}

TEST(CostModel, GenotypeCostSumsEdges) {
  core::Genotype genotype;
  genotype.nodes_per_block = 3;
  core::BlockGenotype block;
  block.edges = {{0, 1, "gdcc"}, {1, 2, "identity"}, {0, 2, "dgcn"}};
  genotype.blocks = {block, block};
  genotype.block_inputs = {0, 1};
  EXPECT_NEAR(core::GenotypeCost(genotype),
              2.0 * (core::OperatorCost("gdcc") + core::OperatorCost("dgcn")),
              1e-12);
}

TEST(CostModel, ExpectedSupernetCostIsDifferentiableAndBounded) {
  models::ModelContext context;
  context.num_nodes = 4;
  context.in_features = 2;
  context.input_length = 6;
  context.output_length = 3;
  context.hidden_dim = 8;
  context.seed = 3;
  Rng rng(5);
  context.adjacency = graph::DistanceGaussianAdjacency(
      graph::RandomPositions(4, &rng), 0.5, 0.1);
  core::SupernetConfig config;
  config.micro_nodes = 3;
  config.macro_blocks = 2;
  config.hidden_dim = 8;
  core::Supernet supernet(config, context);

  Variable cost = core::ExpectedSupernetCost(supernet, 1.0);
  // Bounds: between min and max op cost times the number of mixed edges.
  const int64_t edges = config.macro_blocks * core::NumPairs(3);
  EXPECT_GT(cost.value().item(), 0.0);
  EXPECT_LT(cost.value().item(), 3.0 * edges);
  // Gradient flows into every alpha.
  cost.Backward();
  for (int64_t c = 0; c < supernet.num_cells(); ++c) {
    EXPECT_TRUE(supernet.cell(c).alpha_parameter().has_grad());
  }
}

TEST(CostAwareSearch, HighCostWeightSelectsCheaperArchitectures) {
  const models::PreparedData data = TinyData();
  core::SearchOptions options;
  options.supernet.micro_nodes = 4;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = 6;
  options.seed = 9;

  options.cost_weight = 0.0;
  const core::SearchResult plain =
      core::JointSearcher(options).Search(data);
  options.cost_weight = 50.0;  // Dominating penalty.
  const core::SearchResult frugal =
      core::JointSearcher(options).Search(data);
  EXPECT_LE(core::GenotypeCost(frugal.genotype),
            core::GenotypeCost(plain.genotype));
  // With a dominating penalty the search collapses onto the cheapest
  // non-zero operator (identity).
  EXPECT_LT(core::GenotypeCost(frugal.genotype), 1e-9);
}

TEST(EarlyStopping, StopsBeforeEpochBudgetWhenNotImproving) {
  const models::PreparedData data = TinyData();
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = 6;
  context.output_length = 3;
  context.hidden_dim = 8;
  context.adjacency = data.adjacency;
  context.seed = 4;
  models::ForecastingModelPtr model =
      models::CreateBaseline("STGCN", context);
  models::TrainConfig config;
  config.epochs = 30;
  config.batch_size = 8;
  config.max_batches_per_epoch = 2;
  config.learning_rate = 0.0;  // No progress possible -> must stop early.
  config.early_stop_patience = 2;
  const models::EvalResult result =
      models::TrainAndEvaluate(model.get(), data, config);
  EXPECT_LE(result.epochs_run, 4);
  EXPECT_LT(result.epochs_run, config.epochs);
}

TEST(StateDict, RoundTripRestoresExactOutputs) {
  const models::PreparedData data = TinyData();
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = 6;
  context.output_length = 3;
  context.hidden_dim = 8;
  context.adjacency = data.adjacency;
  context.seed = 4;
  models::ForecastingModelPtr trained =
      models::CreateBaseline("GraphWaveNet", context);
  models::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 4;
  models::TrainAndEvaluate(trained.get(), data, config);
  const std::string text = nn::SaveStateDict(*trained);

  // A fresh model with a different seed produces different outputs...
  models::ModelContext other = context;
  other.seed = 999;
  models::ForecastingModelPtr fresh =
      models::CreateBaseline("GraphWaveNet", other);
  Tensor x, y;
  data.test().GetBatch({0, 1}, &x, &y);
  trained->SetTraining(false);
  fresh->SetTraining(false);
  const Tensor expected = trained->Forward(ag::Constant(x)).value();
  EXPECT_FALSE(fresh->Forward(ag::Constant(x)).value().AllClose(expected,
                                                                1e-9));
  // ...until the state dict is loaded.
  ASSERT_TRUE(nn::LoadStateDict(fresh.get(), text).ok());
  EXPECT_TRUE(fresh->Forward(ag::Constant(x)).value().AllClose(expected,
                                                               1e-12));
}

TEST(StateDict, RejectsMismatchedArchitectures) {
  const models::PreparedData data = TinyData();
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = 6;
  context.output_length = 3;
  context.hidden_dim = 8;
  context.adjacency = data.adjacency;
  context.seed = 4;
  models::ForecastingModelPtr stgcn =
      models::CreateBaseline("STGCN", context);
  models::ForecastingModelPtr mtgnn =
      models::CreateBaseline("MTGNN", context);
  const std::string text = nn::SaveStateDict(*stgcn);
  EXPECT_FALSE(nn::LoadStateDict(mtgnn.get(), text).ok());
  EXPECT_FALSE(nn::LoadStateDict(stgcn.get(), "param = bogus 0\n").ok());
  EXPECT_FALSE(nn::LoadStateDict(stgcn.get(), "").ok());
}

TEST(StateDict, FileRoundTrip) {
  Rng rng(12);
  nn::Linear layer(3, 2, &rng);
  const std::string path = ::testing::TempDir() + "/autocts_state.txt";
  ASSERT_TRUE(nn::SaveStateDictToFile(layer, path).ok());
  nn::Linear other(3, 2, &rng);
  ASSERT_TRUE(nn::LoadStateDictFromFile(&other, path).ok());
  EXPECT_TRUE(other.Parameters()[0].value().AllClose(
      layer.Parameters()[0].value(), 1e-12));
  EXPECT_EQ(nn::LoadStateDictFromFile(&other, "/no/such/file").code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(StateDict, SnapshotRestore) {
  Rng rng(13);
  nn::Linear layer(2, 2, &rng);
  const nn::ParameterSnapshot snapshot(layer);
  layer.Parameters()[0].mutable_value().Fill(7.0);
  snapshot.Restore(&layer);
  EXPECT_FALSE(layer.Parameters()[0].value().AllClose(
      Tensor::Full({2, 2}, 7.0), 1e-9));
}

TEST(SecondOrderSearch, ProducesValidGenotypeAndDiffersFromFirstOrder) {
  const models::PreparedData data = TinyData();
  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.epochs = 1;
  options.batch_size = 8;
  options.max_batches_per_epoch = 4;
  options.seed = 21;

  options.bilevel_order = 2;
  const core::SearchResult second =
      core::JointSearcher(options).Search(data);
  EXPECT_TRUE(second.genotype.Validate().ok());

  options.bilevel_order = 1;
  const core::SearchResult first =
      core::JointSearcher(options).Search(data);
  // Same seed, different optimization order: the validation trajectories
  // must differ (the unrolled gradient includes the correction term).
  EXPECT_NE(first.final_validation_loss, second.final_validation_loss);
}

TEST(SecondOrderSearch, RestoresWeightsExactly) {
  // After a Theta step of either order, a w-update from identical state
  // must behave identically; probe by checking determinism of the full
  // search under order 2 (any weight-restore bug would break it).
  const models::PreparedData data = TinyData();
  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 1;
  options.supernet.hidden_dim = 8;
  options.epochs = 1;
  options.batch_size = 8;
  options.max_batches_per_epoch = 3;
  options.seed = 22;
  options.bilevel_order = 2;
  const core::SearchResult a = core::JointSearcher(options).Search(data);
  const core::SearchResult b = core::JointSearcher(options).Search(data);
  EXPECT_EQ(a.genotype, b.genotype);
  EXPECT_DOUBLE_EQ(a.final_validation_loss, b.final_validation_loss);
}

TEST(EarlyStopping, DisabledRunsFullBudget) {
  const models::PreparedData data = TinyData();
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = 6;
  context.output_length = 3;
  context.hidden_dim = 8;
  context.adjacency = data.adjacency;
  context.seed = 4;
  models::ForecastingModelPtr model =
      models::CreateBaseline("STGCN", context);
  models::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  config.max_batches_per_epoch = 2;
  const models::EvalResult result =
      models::TrainAndEvaluate(model.get(), data, config);
  EXPECT_EQ(result.epochs_run, 3);
}

}  // namespace
}  // namespace autocts
