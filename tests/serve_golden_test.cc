// Golden forecast regression suite: every model-zoo baseline plus a derived
// AutoCTS architecture has a checked-in fixture under
// tests/testdata/forecast_golden_v1/ holding tiny fixed-seed trained
// weights and the exact hex-float image of the model's forward pass on a
// deterministic input. The assertions are byte-exact, so ANY numeric drift
// in the kernel/autograd/nn stack — a reordered accumulation, a changed
// default, a refactored op — fails loudly here instead of silently shifting
// every downstream result.
//
// When a change is intentional, regenerate the fixtures with
//
//   tools/regen_goldens.sh         (wraps AUTOCTS_REGEN_GOLDENS=1)
//
// and review the fixture diff alongside the code change. Regeneration
// retrains the tiny models (a few seconds) and re-verifies the freshly
// written fixtures in the same run.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/text_codec.h"
#include "core/derived_model.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/state_dict.h"
#include "testing/fixtures.h"

namespace autocts {
namespace {

#ifndef AUTOCTS_TESTDATA_DIR
#error "AUTOCTS_TESTDATA_DIR must be defined by the build"
#endif

constexpr char kFormatName[] = "autocts-forecast-golden";
constexpr int64_t kFormatVersion = 1;
constexpr char kCrcKey[] = "crc32 = ";
constexpr int64_t kHiddenDim = 8;
constexpr uint64_t kDataSeed = 61;
constexpr uint64_t kInitSeed = 5;
constexpr uint64_t kTrainSeed = 13;
constexpr uint64_t kInputSeed = 1234;
constexpr char kDerivedName[] = "AutoCTS-derived";

bool RegenRequested() {
  const char* env = std::getenv("AUTOCTS_REGEN_GOLDENS");
  return env != nullptr && std::string(env) == "1";
}

std::string Slug(const std::string& name) {
  std::string slug;
  for (char c : name) {
    slug.push_back(std::isalnum(static_cast<unsigned char>(c))
                       ? static_cast<char>(
                             std::tolower(static_cast<unsigned char>(c)))
                       : '_');
  }
  return slug;
}

std::string FixturePath(const std::string& name) {
  return std::string(AUTOCTS_TESTDATA_DIR) + "/forecast_golden_v1/" +
         Slug(name) + ".golden";
}

// The shared deterministic setup: every fixture was generated against this
// dataset geometry, init seed, and probe input. Changing any of these
// requires a fixture regeneration.
struct GoldenContext {
  models::PreparedData data;
  models::ModelContext context;
  Tensor input;  // [1, P, N, F], normalized domain
};

const GoldenContext& Context() {
  static const GoldenContext* golden = [] {
    auto* g = new GoldenContext{fixtures::TinyPreparedData(kDataSeed), {}, {}};
    g->context.num_nodes = g->data.num_nodes;
    g->context.in_features = g->data.in_features;
    g->context.input_length = g->data.window.input_length;
    g->context.output_length = g->data.window.output_length;
    g->context.hidden_dim = kHiddenDim;
    g->context.adjacency = g->data.adjacency;
    g->context.seed = kInitSeed;
    Rng rng(kInputSeed);
    g->input = Tensor::Rand({1, g->context.input_length,
                             g->context.num_nodes, g->context.in_features},
                            &rng, -1.0, 1.0);
    return g;
  }();
  return *golden;
}

std::vector<std::string> GoldenModelNames() {
  std::vector<std::string> names = models::AllBaselineNames();
  names.push_back(kDerivedName);
  return names;
}

models::ForecastingModelPtr BuildModel(const std::string& name) {
  const GoldenContext& golden = Context();
  if (name == kDerivedName) {
    return std::make_unique<core::DerivedModel>(
        fixtures::MakeCandidateGenotype(1), golden.context);
  }
  return models::CreateBaseline(name, golden.context);
}

std::string ForecastHex(const Tensor& forecast) {
  std::string line;
  for (int64_t i = 0; i < forecast.size(); ++i) {
    if (!line.empty()) line.push_back(' ');
    line += FormatExactDouble(forecast.data()[i]);
  }
  return line;
}

std::string EncodeFixture(const std::string& name, const std::string& state,
                          const std::string& forecast_hex) {
  TextWriter writer;
  writer.Add("format", kFormatName);
  writer.AddInt("version", kFormatVersion);
  writer.Add("model", name);
  std::istringstream stream(state);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  writer.AddInt("state_lines", static_cast<int64_t>(lines.size()));
  for (const std::string& l : lines) writer.Add("state", l);
  writer.Add("forecast", forecast_hex);
  std::string payload = writer.ToString();
  char trailer[24];
  std::snprintf(trailer, sizeof(trailer), "%s%08x\n", kCrcKey,
                Crc32(payload));
  return payload + trailer;
}

struct Fixture {
  std::string state;
  std::string forecast_hex;
};

StatusOr<Fixture> DecodeFixture(const std::string& text,
                                const std::string& name) {
  const size_t trailer = text.rfind(kCrcKey);
  if (trailer == std::string::npos) {
    return Status::InvalidArgument("missing crc32 trailer");
  }
  const std::string payload = text.substr(0, trailer);
  StatusOr<TextReader> crc_reader = TextReader::Parse(text.substr(trailer));
  if (!crc_reader.ok()) return crc_reader.status();
  StatusOr<std::string> crc_text = crc_reader.value().Get("crc32");
  if (!crc_text.ok()) return crc_text.status();
  char expected[16];
  std::snprintf(expected, sizeof(expected), "%08x", Crc32(payload));
  if (crc_text.value() != expected) {
    return Status::InvalidArgument("crc mismatch: fixture corrupted");
  }
  StatusOr<TextReader> reader = TextReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  StatusOr<std::string> format = reader.value().Get("format");
  if (!format.ok() || format.value() != kFormatName) {
    return Status::InvalidArgument("not a forecast golden file");
  }
  StatusOr<int64_t> version = reader.value().GetInt("version");
  if (!version.ok() || version.value() != kFormatVersion) {
    return Status::InvalidArgument("unsupported golden version");
  }
  StatusOr<std::string> model = reader.value().Get("model");
  if (!model.ok() || model.value() != name) {
    return Status::InvalidArgument("fixture names a different model");
  }
  StatusOr<int64_t> state_lines = reader.value().GetInt("state_lines");
  if (!state_lines.ok()) return state_lines.status();
  const std::vector<std::string> lines = reader.value().GetAll("state");
  if (static_cast<int64_t>(lines.size()) != state_lines.value()) {
    return Status::InvalidArgument("state line count mismatch");
  }
  Fixture fixture;
  for (const std::string& line : lines) {
    fixture.state += line;
    fixture.state.push_back('\n');
  }
  StatusOr<std::string> forecast = reader.value().Get("forecast");
  if (!forecast.ok()) return forecast.status();
  fixture.forecast_hex = std::move(forecast).value();
  return fixture;
}

// Trains the tiny model and writes its fixture. Only runs under
// AUTOCTS_REGEN_GOLDENS=1 (tools/regen_goldens.sh).
void RegenerateFixture(const std::string& name) {
  const GoldenContext& golden = Context();
  models::ForecastingModelPtr model = BuildModel(name);
  models::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = 2;
  config.seed = kTrainSeed;
  models::TrainAndEvaluate(model.get(), golden.data, config);
  model->SetTraining(false);
  const Tensor forecast =
      model->Forward(Variable(golden.input, false)).value();
  const std::string text = EncodeFixture(name, nn::SaveStateDict(*model),
                                         ForecastHex(forecast));
  const Status written = AtomicWriteFile(FixturePath(name), text, false);
  ASSERT_TRUE(written.ok()) << written.ToString();
}

class ForecastGoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ForecastGoldenTest, ForwardMatchesGoldenByteForByte) {
  const std::string name = GetParam();
  if (RegenRequested()) RegenerateFixture(name);

  StatusOr<std::string> text = ReadFileToString(FixturePath(name));
  ASSERT_TRUE(text.ok()) << "missing golden fixture " << FixturePath(name)
                         << " — run tools/regen_goldens.sh";
  StatusOr<Fixture> fixture = DecodeFixture(text.value(), name);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  models::ForecastingModelPtr model = BuildModel(name);
  const Status loaded = nn::LoadStateDict(model.get(), fixture.value().state);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  model->SetTraining(false);
  const Tensor forecast =
      model->Forward(Variable(Context().input, false)).value();
  EXPECT_EQ(ForecastHex(forecast), fixture.value().forecast_hex)
      << name
      << ": forward drifted from the golden fixture. If the numeric change "
         "is intentional, regenerate with tools/regen_goldens.sh and review "
         "the fixture diff.";
}

INSTANTIATE_TEST_SUITE_P(AllModels, ForecastGoldenTest,
                         ::testing::ValuesIn(GoldenModelNames()),
                         [](const auto& info) { return Slug(info.param); });

}  // namespace
}  // namespace autocts
